package shard

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/engine"
)

// TestRanges pins the contiguous-partition contract: ranges cover [0, total)
// exactly once, sizes differ by at most one, remainder goes earliest.
func TestRanges(t *testing.T) {
	tests := []struct {
		total, n int
		want     []Range
	}{
		{1, 1, []Range{{0, 1}}},
		{1, 4, []Range{{0, 1}}},                                   // clamped to total
		{10, 4, []Range{{0, 3}, {3, 3}, {6, 2}, {8, 2}}},          // remainder earliest
		{8, 4, []Range{{0, 2}, {2, 2}, {4, 2}, {6, 2}}},           // even split
		{5, 0, []Range{{0, 5}}},                                   // clamped to 1
		{1000000, 3, []Range{{0, 333334}, {333334, 333333}, {666667, 333333}}},
	}
	for _, tc := range tests {
		got := Ranges(tc.total, tc.n)
		if len(got) != len(tc.want) {
			t.Errorf("Ranges(%d, %d) = %v, want %v", tc.total, tc.n, got, tc.want)
			continue
		}
		covered := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Ranges(%d, %d)[%d] = %v, want %v", tc.total, tc.n, i, got[i], tc.want[i])
			}
			if got[i].Start != covered {
				t.Errorf("Ranges(%d, %d)[%d] not contiguous: start %d, want %d", tc.total, tc.n, i, got[i].Start, covered)
			}
			covered += got[i].Count
		}
		if covered != tc.total {
			t.Errorf("Ranges(%d, %d) covers %d vehicles", tc.total, tc.n, covered)
		}
	}
	if got := Ranges(0, 4); got != nil {
		t.Errorf("Ranges(0, 4) = %v, want nil", got)
	}
}

func TestParseRangeRoundTrip(t *testing.T) {
	for _, r := range Ranges(1000, 7) {
		got, err := ParseRange(r.String())
		if err != nil {
			t.Fatalf("ParseRange(%q): %v", r, err)
		}
		if got != r {
			t.Errorf("ParseRange(%q) = %v", r, got)
		}
	}
	for _, bad := range []string{"", "5", "-1:3", "0:0", "0:-2", "a:b"} {
		if _, err := ParseRange(bad); err == nil {
			t.Errorf("ParseRange(%q) accepted", bad)
		}
	}
}

// smallCfg is a fast whole-fleet config exercising live + MAC + attack
// phases with a reduced scenario set.
func smallCfg(fleet int) engine.Config {
	return engine.Config{
		Fleet:          fleet,
		Workers:        2,
		RootSeed:       0xC0FFEE,
		Scenarios:      attack.Scenarios()[:2],
		Regimes:        []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE},
		TrafficHorizon: 10 * time.Millisecond,
	}
}

// TestShardedRunByteIdentical is the tentpole contract: the merged sharded
// report renders byte-identically to the unsharded engine.Run for every
// shard count, vehicle lines and all.
func TestShardedRunByteIdentical(t *testing.T) {
	cfg := smallCfg(9)
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.String()
	for _, shards := range []int{1, 2, 4, 9, 20} {
		got, err := Run(Config{Engine: cfg, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.String() != want {
			t.Errorf("shards=%d: merged report diverged from unsharded oracle\n--- oracle\n%s\n--- sharded\n%s", shards, want, got.String())
		}
	}
}

// TestShardedChaosHealthIdentical asserts shard-layout invariance under
// armed supervision: chaos faults key on global vehicle indices, so the
// Health ledger (and everything else) must not move when the shard layout
// changes.
func TestShardedChaosHealthIdentical(t *testing.T) {
	cfg := smallCfg(8)
	cfg.Chaos = &chaos.Plan{Seed: 7, Panic: 0.2, Corrupt: 0.1}
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.String()
	if oracle.Health.IsZero() {
		t.Fatal("chaos plan injected nothing; test needs a fault-bearing config")
	}
	for _, shards := range []int{2, 3, 8} {
		got, err := Run(Config{Engine: cfg, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.String() != want {
			t.Errorf("shards=%d: chaos report diverged\n--- oracle\n%s\n--- sharded\n%s", shards, want, got.String())
		}
		if got.Health != oracle.Health {
			t.Errorf("shards=%d: health ledger moved: %+v vs %+v", shards, got.Health, oracle.Health)
		}
	}
}

// TestSpawnedShardsByteIdentical drives the subprocess wire path without a
// subprocess: the spawn hook runs the range in-process but round-trips the
// wire report through its JSON encoding, proving the serialization carries
// everything the merge needs.
func TestSpawnedShardsByteIdentical(t *testing.T) {
	cfg := smallCfg(6)
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spawned := 0
	got, err := Run(Config{Engine: cfg, Shards: 3, Spawn: func(r Range) (*WireReport, error) {
		spawned++
		var buf bytes.Buffer
		if err := RunRange(cfg, r).Encode(&buf); err != nil {
			return nil, err
		}
		return DecodeWireReport(&buf)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if spawned != 3 {
		t.Errorf("spawn hook ran %d times, want 3", spawned)
	}
	if got.String() != oracle.String() {
		t.Errorf("spawned merge diverged from oracle\n--- oracle\n%s\n--- spawned\n%s", oracle.String(), got.String())
	}
}

// TestShardedUnrecoverableSurfaces asserts the partial-report contract
// across the shard boundary: an unrecoverable sweep error in one shard
// surfaces from Run naming the range, and the merged report still carries
// every shard's vehicles.
func TestShardedUnrecoverableSurfaces(t *testing.T) {
	cfg := smallCfg(4)
	cfg.Chaos = &chaos.Plan{Seed: 3, Panic: 1, Persist: 99}
	got, err := Run(Config{Engine: cfg, Shards: 2})
	if err == nil {
		t.Fatal("unrecoverable chaos sweep returned nil error")
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Errorf("error does not name the shard: %v", err)
	}
	if got == nil || len(got.Vehicles) != 4 {
		t.Fatalf("partial merged report missing vehicles: %+v", got)
	}
	if got.Health.Unrecoverable == 0 {
		t.Error("merged health ledger lost the unrecoverable count")
	}
}

// TestRunRejectsPreOffsetConfig pins the index-space ownership rule.
func TestRunRejectsPreOffsetConfig(t *testing.T) {
	cfg := smallCfg(4)
	cfg.IndexOffset = 2
	if _, err := Run(Config{Engine: cfg, Shards: 2}); err == nil {
		t.Fatal("Run accepted a pre-offset engine config")
	}
}
