// Package behaviour implements the fine-grained policy extension the paper
// sketches in §V-A ("more complex policies such as behavioural or
// situational based policies may be derived"): rules that decide not only
// on a frame's identifier and direction but on *vehicle situation* (e.g.
// "no door unlock while in motion") and on *traffic behaviour* (e.g. "at
// most N ECU commands per second").
//
// The extension composes with the identifier engine rather than replacing
// it: an Engine wraps any canbus.InlineFilter (normally the hpe.Engine) and
// applies its rules only to frames the base engine already granted. This
// closes the credential-abuse gap of pure ID filtering: a *legitimate*
// writer whose credentials are abused (stolen remote-unlock access, a
// flooding compromised sensor) is stopped by situation and rate rules even
// though every one of its frames carries an approved identifier.
package behaviour

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/policy"
)

// Situation is a predicate over live system state, evaluated at decision
// time. Implementations must be safe for concurrent use.
type Situation interface {
	// Holds reports whether the situation currently applies.
	Holds() bool
	// Describe names the situation for audit output.
	Describe() string
}

// SituationFunc adapts a closure to Situation.
type SituationFunc struct {
	// Name is the audit label.
	Name string
	// Fn is the predicate.
	Fn func() bool
}

// Holds implements Situation.
func (s SituationFunc) Holds() bool { return s.Fn() }

// Describe implements Situation.
func (s SituationFunc) Describe() string { return s.Name }

var _ Situation = SituationFunc{}

// Clock supplies the current virtual time; rate rules measure their windows
// against it. sim.Scheduler.Now is the usual source.
type Clock func() time.Duration

// Rule is one behavioural/situational policy rule.
type Rule interface {
	// Name identifies the rule in stats and audit output.
	Name() string
	// Decide returns Block to veto a frame the identifier layer granted.
	Decide(dir canbus.Direction, f canbus.Frame, now time.Duration) canbus.Verdict
}

// SituationalDeny blocks a set of identifiers in one direction while a
// situation holds — e.g. deny reads of the door-unlock command while the
// vehicle is in motion.
type SituationalDeny struct {
	// Label names the rule.
	Label string
	// When is the situation under which the deny applies.
	When Situation
	// Direction restricted (Read or Write).
	Direction canbus.Direction
	// IDs covered.
	IDs policy.IDSet
}

// Name implements Rule.
func (r *SituationalDeny) Name() string { return r.Label }

// Decide implements Rule.
func (r *SituationalDeny) Decide(dir canbus.Direction, f canbus.Frame, _ time.Duration) canbus.Verdict {
	if dir != r.Direction || !r.IDs.Contains(f.ID) {
		return canbus.Grant
	}
	if r.When.Holds() {
		return canbus.Block
	}
	return canbus.Grant
}

// Validate checks the rule is fully specified.
func (r *SituationalDeny) Validate() error {
	if r.Label == "" {
		return fmt.Errorf("behaviour: situational rule has no label")
	}
	if r.When == nil {
		return fmt.Errorf("behaviour: rule %q has no situation", r.Label)
	}
	if r.Direction != canbus.Read && r.Direction != canbus.Write {
		return fmt.Errorf("behaviour: rule %q has invalid direction", r.Label)
	}
	if len(r.IDs) == 0 {
		return fmt.Errorf("behaviour: rule %q covers no identifiers", r.Label)
	}
	return nil
}

var _ Rule = (*SituationalDeny)(nil)

// RateLimit bounds how many frames of a set of identifiers may pass in one
// direction per sliding window — the behavioural defence against a
// legitimate-but-flooding node. The window is sliding and exact (it stores
// the grant timestamps inside the current window; MaxPerWindow bounds the
// memory).
type RateLimit struct {
	// Label names the rule.
	Label string
	// Direction restricted.
	Direction canbus.Direction
	// IDs covered.
	IDs policy.IDSet
	// MaxPerWindow is the number of grants allowed per Window.
	MaxPerWindow int
	// Window is the sliding window length.
	Window time.Duration

	mu     sync.Mutex
	single bool
	grants []time.Duration
}

// Name implements Rule.
func (r *RateLimit) Name() string { return r.Label }

// Validate checks the rule is fully specified.
func (r *RateLimit) Validate() error {
	if r.Label == "" {
		return fmt.Errorf("behaviour: rate rule has no label")
	}
	if r.Direction != canbus.Read && r.Direction != canbus.Write {
		return fmt.Errorf("behaviour: rule %q has invalid direction", r.Label)
	}
	if len(r.IDs) == 0 {
		return fmt.Errorf("behaviour: rule %q covers no identifiers", r.Label)
	}
	if r.MaxPerWindow <= 0 {
		return fmt.Errorf("behaviour: rule %q has non-positive budget", r.Label)
	}
	if r.Window <= 0 {
		return fmt.Errorf("behaviour: rule %q has non-positive window", r.Label)
	}
	return nil
}

// Reset discards the rule's window state, restoring it to a freshly
// constructed rule. Pooled harnesses call this between runs so a reused rule
// behaves identically to a new one even though the virtual clock restarted.
func (r *RateLimit) Reset() {
	if r.single {
		r.grants = r.grants[:0]
		return
	}
	r.mu.Lock()
	r.grants = r.grants[:0]
	r.mu.Unlock()
}

// setSingleOwner puts the rule in single-owner mode (see Engine.SetSingleOwner).
func (r *RateLimit) setSingleOwner(on bool) { r.single = on }

// Decide implements Rule.
func (r *RateLimit) Decide(dir canbus.Direction, f canbus.Frame, now time.Duration) canbus.Verdict {
	if dir != r.Direction || !r.IDs.Contains(f.ID) {
		return canbus.Grant
	}
	if !r.single {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	// Evict grants that slid out of the window.
	cutoff := now - r.Window
	keep := r.grants[:0]
	for _, t := range r.grants {
		if t > cutoff {
			keep = append(keep, t)
		}
	}
	r.grants = keep
	if len(r.grants) >= r.MaxPerWindow {
		return canbus.Block
	}
	r.grants = append(r.grants, now)
	return canbus.Grant
}

var _ Rule = (*RateLimit)(nil)

// Stats counts engine activity per layer.
type Stats struct {
	// Decisions counts frames examined.
	Decisions uint64
	// BaseBlocked counts frames already blocked by the identifier layer.
	BaseBlocked uint64
	// RuleBlocked counts frames vetoed by behavioural rules, per rule name.
	RuleBlocked map[string]uint64
	// Granted counts frames that passed both layers.
	Granted uint64
}

// Engine layers behavioural rules over an identifier-level inline filter.
// It implements canbus.InlineFilter and is installed in the same Fig. 4
// position; conceptually it is additional checking logic inside the HPE.
type Engine struct {
	base  canbus.InlineFilter
	clock Clock

	mu     sync.Mutex
	single bool
	rules  []Rule
	// ruleBlocked counts vetoes per rule, index-aligned with rules. Stats
	// materialises it into Stats.RuleBlocked on demand: a flooded sweep cell
	// vetoes thousands of frames, and a per-veto string-keyed map assign was
	// hot enough to show in whole-campaign CPU profiles.
	ruleBlocked []uint64
	stats       Stats
}

var _ canbus.InlineFilter = (*Engine)(nil)

// New creates an engine over base (the identifier layer; PermissiveFilter
// for behaviour-only enforcement) using clock for rate windows.
func New(base canbus.InlineFilter, clock Clock) *Engine {
	if base == nil {
		base = canbus.PermissiveFilter{}
	}
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Engine{base: base, clock: clock}
}

// validator is implemented by rules that can check themselves.
type validator interface{ Validate() error }

// singleOwnable is implemented by rules that carry their own lock and can
// shed it in single-owner mode (RateLimit's window mutex).
type singleOwnable interface{ setSingleOwner(bool) }

// SetSingleOwner switches the engine (and every installed rule that carries
// its own lock) between thread-safe and single-owner operation. In
// single-owner mode all locking and the per-decision defensive copy of the
// rule list are skipped: every Decide otherwise allocates a rules snapshot,
// which made this engine the dominant allocation site of whole campaign
// sweeps. The caller asserts all use happens from one goroutine at a time —
// the confinement the fleet engine's per-worker arenas already guarantee and
// its -race suites observe.
func (e *Engine) SetSingleOwner(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.single = on
	for _, r := range e.rules {
		if so, ok := r.(singleOwnable); ok {
			so.setSingleOwner(on)
		}
	}
}

// AddRule appends a rule, validating it when possible.
func (e *Engine) AddRule(r Rule) error {
	if v, ok := r.(validator); ok {
		if err := v.Validate(); err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, existing := range e.rules {
		if existing.Name() == r.Name() {
			return fmt.Errorf("behaviour: duplicate rule %q", r.Name())
		}
	}
	if so, ok := r.(singleOwnable); ok {
		so.setSingleOwner(e.single)
	}
	e.rules = append(e.rules, r)
	e.ruleBlocked = append(e.ruleBlocked, 0)
	return nil
}

// RemoveRule drops the named rule; it reports whether one was removed. The
// rule's veto count leaves the stats with it.
func (e *Engine) RemoveRule(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, r := range e.rules {
		if r.Name() == name {
			e.rules = append(e.rules[:i], e.rules[i+1:]...)
			e.ruleBlocked = append(e.ruleBlocked[:i], e.ruleBlocked[i+1:]...)
			return true
		}
	}
	return false
}

// Rules returns the names of installed rules in evaluation order.
func (e *Engine) Rules() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.Name()
	}
	return out
}

// resettable is implemented by rules that carry per-run state (RateLimit's
// sliding window); Engine.Reset clears them alongside the counters.
type resettable interface{ Reset() }

// Reset restores the engine to its post-construction state without touching
// the installed rule list: counters zeroed and every stateful rule's window
// cleared. A reset engine decides exactly like a freshly built one carrying
// the same rules — the pooled-arena equivalence the fleet engine relies on.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
	clear(e.ruleBlocked)
	for _, r := range e.rules {
		if rs, ok := r.(resettable); ok {
			rs.Reset()
		}
	}
}

// windowSnapshottable is implemented by rules whose per-run state is a
// window of grant timestamps (RateLimit); Engine.Snapshot captures it and
// Engine.RestoreFrom rewinds it.
type windowSnapshottable interface {
	snapshotWindow(dst []time.Duration) []time.Duration
	restoreWindow(src []time.Duration)
}

// snapshotWindow implements windowSnapshottable: it copies the current grant
// window into dst's storage (reused across captures).
func (r *RateLimit) snapshotWindow(dst []time.Duration) []time.Duration {
	if !r.single {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return append(dst[:0], r.grants...)
}

// restoreWindow implements windowSnapshottable.
func (r *RateLimit) restoreWindow(src []time.Duration) {
	if !r.single {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	r.grants = append(r.grants[:0], src...)
}

// Snapshot captures an engine's mutable state — counters, per-rule veto
// counts and every stateful rule's window — for the attack arena's prefix
// checkpointing. The rule list itself is not captured: rules are never added
// or removed inside a checkpoint window.
type Snapshot struct {
	stats       Stats
	ruleBlocked []uint64
	windows     [][]time.Duration // index-aligned with rules; nil for stateless rules
}

// Snapshot captures the engine's state into dst, reusing dst's buffers.
func (e *Engine) Snapshot(dst *Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	dst.stats = e.stats
	dst.ruleBlocked = append(dst.ruleBlocked[:0], e.ruleBlocked...)
	if cap(dst.windows) < len(e.rules) {
		dst.windows = append(dst.windows, make([][]time.Duration, len(e.rules)-len(dst.windows))...)
	}
	dst.windows = dst.windows[:len(e.rules)]
	for i, r := range e.rules {
		if ws, ok := r.(windowSnapshottable); ok {
			dst.windows[i] = ws.snapshotWindow(dst.windows[i])
		}
	}
}

// RestoreFrom rewinds the engine to a state captured by Snapshot. A restored
// engine decides and counts byte-identically to one that replayed the
// captured prefix after a Reset.
func (e *Engine) RestoreFrom(src *Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = src.stats
	copy(e.ruleBlocked, src.ruleBlocked)
	for i, r := range e.rules {
		if ws, ok := r.(windowSnapshottable); ok {
			ws.restoreWindow(src.windows[i])
		}
	}
}

// Stats returns a snapshot of the counters. RuleBlocked carries an entry for
// every rule that vetoed at least one frame.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := e.stats
	cp.RuleBlocked = make(map[string]uint64, len(e.rules))
	for i, r := range e.rules {
		if e.ruleBlocked[i] > 0 {
			cp.RuleBlocked[r.Name()] = e.ruleBlocked[i]
		}
	}
	return cp
}

// Decide implements canbus.InlineFilter: identifier layer first, then each
// behavioural rule in order; the first Block wins.
func (e *Engine) Decide(dir canbus.Direction, f canbus.Frame) canbus.Verdict {
	if e.single {
		return e.decideSingle(dir, f)
	}
	e.mu.Lock()
	e.stats.Decisions++
	rules := append([]Rule(nil), e.rules...)
	e.mu.Unlock()

	if e.base.Decide(dir, f) != canbus.Grant {
		e.mu.Lock()
		e.stats.BaseBlocked++
		e.mu.Unlock()
		return canbus.Block
	}
	now := e.clock()
	for _, r := range rules {
		if r.Decide(dir, f, now) != canbus.Grant {
			// Re-resolve the rule's slot by name under the lock: the
			// snapshot's index may be stale if AddRule/RemoveRule ran since
			// (names are unique per engine). A veto by a rule removed
			// mid-decision is dropped — it is no longer installed to own a
			// counter.
			e.mu.Lock()
			for i, cur := range e.rules {
				if cur.Name() == r.Name() {
					e.ruleBlocked[i]++
					break
				}
			}
			e.mu.Unlock()
			return canbus.Block
		}
	}
	e.mu.Lock()
	e.stats.Granted++
	e.mu.Unlock()
	return canbus.Grant
}

// decideSingle is the single-owner fast path: same decision sequence, no
// locking, no rules snapshot.
func (e *Engine) decideSingle(dir canbus.Direction, f canbus.Frame) canbus.Verdict {
	e.stats.Decisions++
	if e.base.Decide(dir, f) != canbus.Grant {
		e.stats.BaseBlocked++
		return canbus.Block
	}
	now := e.clock()
	for i, r := range e.rules {
		if r.Decide(dir, f, now) != canbus.Grant {
			e.ruleBlocked[i]++
			return canbus.Block
		}
	}
	e.stats.Granted++
	return canbus.Grant
}
