package behaviour

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/hpe"
	"repro/internal/policy"
	"repro/internal/threatmodel"
)

func frame(id uint32) canbus.Frame { return canbus.MustDataFrame(id, []byte{1}) }

// tickClock is a manually advanced Clock.
type tickClock struct{ now time.Duration }

func (c *tickClock) Clock() Clock { return func() time.Duration { return c.now } }

func TestSituationalDeny(t *testing.T) {
	var inMotion atomic.Bool
	e := New(nil, nil)
	err := e.AddRule(&SituationalDeny{
		Label:     "no-unlock-in-motion",
		When:      SituationFunc{Name: "in motion", Fn: inMotion.Load},
		Direction: canbus.Read,
		IDs:       policy.SingleID(0x200),
	})
	if err != nil {
		t.Fatal(err)
	}

	if e.Decide(canbus.Read, frame(0x200)) != canbus.Grant {
		t.Error("blocked while situation does not hold")
	}
	inMotion.Store(true)
	if e.Decide(canbus.Read, frame(0x200)) != canbus.Block {
		t.Error("granted while situation holds")
	}
	// Other IDs and the other direction are untouched.
	if e.Decide(canbus.Read, frame(0x201)) != canbus.Grant {
		t.Error("unrelated ID blocked")
	}
	if e.Decide(canbus.Write, frame(0x200)) != canbus.Grant {
		t.Error("unrelated direction blocked")
	}
	st := e.Stats()
	if st.RuleBlocked["no-unlock-in-motion"] != 1 || st.Granted != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRateLimitSlidingWindow(t *testing.T) {
	clk := &tickClock{}
	e := New(nil, clk.Clock())
	err := e.AddRule(&RateLimit{
		Label:        "ecu-cmd-budget",
		Direction:    canbus.Write,
		IDs:          policy.SingleID(0x10),
		MaxPerWindow: 3,
		Window:       time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three grants within the window, then blocks.
	for i := 0; i < 3; i++ {
		clk.now += 100 * time.Millisecond
		if e.Decide(canbus.Write, frame(0x10)) != canbus.Grant {
			t.Fatalf("grant %d refused", i)
		}
	}
	clk.now += 100 * time.Millisecond
	if e.Decide(canbus.Write, frame(0x10)) != canbus.Block {
		t.Fatal("budget not enforced")
	}
	// Window slides: after the first grant ages out, one more passes.
	clk.now = 1150 * time.Millisecond // first grant at 100ms is now outside
	if e.Decide(canbus.Write, frame(0x10)) != canbus.Grant {
		t.Fatal("window did not slide")
	}
	// Unrelated IDs unaffected even while saturated.
	if e.Decide(canbus.Write, frame(0x11)) != canbus.Grant {
		t.Error("unrelated ID rate-limited")
	}
}

func TestRuleValidation(t *testing.T) {
	e := New(nil, nil)
	cases := []Rule{
		&SituationalDeny{}, // empty
		&SituationalDeny{Label: "x", Direction: canbus.Read},                     // no situation
		&RateLimit{Label: "r", Direction: canbus.Write},                          // no ids
		&RateLimit{Label: "r", Direction: canbus.Write, IDs: policy.SingleID(1)}, // no budget
		&RateLimit{Label: "r", Direction: canbus.Write, IDs: policy.SingleID(1),
			MaxPerWindow: 1}, // no window
	}
	for i, r := range cases {
		if err := e.AddRule(r); err == nil {
			t.Errorf("case %d: invalid rule accepted", i)
		}
	}
}

func TestDuplicateRuleRejected(t *testing.T) {
	e := New(nil, nil)
	mk := func() Rule {
		return &SituationalDeny{Label: "dup",
			When:      SituationFunc{Name: "s", Fn: func() bool { return false }},
			Direction: canbus.Read, IDs: policy.SingleID(1)}
	}
	if err := e.AddRule(mk()); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(mk()); err == nil {
		t.Error("duplicate rule accepted")
	}
}

func TestRemoveRule(t *testing.T) {
	e := New(nil, nil)
	hold := SituationFunc{Name: "always", Fn: func() bool { return true }}
	if err := e.AddRule(&SituationalDeny{Label: "r1", When: hold,
		Direction: canbus.Read, IDs: policy.SingleID(1)}); err != nil {
		t.Fatal(err)
	}
	if e.Decide(canbus.Read, frame(1)) != canbus.Block {
		t.Fatal("rule inactive")
	}
	if !e.RemoveRule("r1") {
		t.Fatal("RemoveRule failed")
	}
	if e.RemoveRule("r1") {
		t.Error("double remove succeeded")
	}
	if e.Decide(canbus.Read, frame(1)) != canbus.Grant {
		t.Error("removed rule still blocking")
	}
	if len(e.Rules()) != 0 {
		t.Errorf("Rules = %v", e.Rules())
	}
}

func TestBaseLayerConsultedFirst(t *testing.T) {
	base := blockAll{}
	e := New(base, nil)
	if e.Decide(canbus.Read, frame(1)) != canbus.Block {
		t.Fatal("base verdict ignored")
	}
	st := e.Stats()
	if st.BaseBlocked != 1 {
		t.Errorf("BaseBlocked = %d", st.BaseBlocked)
	}
}

type blockAll struct{}

func (blockAll) Decide(canbus.Direction, canbus.Frame) canbus.Verdict { return canbus.Block }

// TestCredentialAbuseScenario is the extension's motivating end-to-end
// case: a compromised Telematics unit abuses its *legitimate* remote-unlock
// credential while the car is moving. The identifier-level HPE must grant
// it (telematics is an approved writer of door commands in Normal mode);
// the situational layer on the door-lock node blocks it; a parked unlock
// still works.
func TestCredentialAbuseScenario(t *testing.T) {
	c := car.MustNew(car.Config{})
	analysis, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	set, err := threatmodel.DerivePolicies(analysis, "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := policy.Compile(set, policy.CompileOptions{
		Subjects: car.AllNodes, Modes: car.AllModes,
	})
	if err != nil {
		t.Fatal(err)
	}
	engines, err := hpe.Deploy(c.Bus(), compiled, c, hpe.DefaultCycleModel(), car.AllNodes...)
	if err != nil {
		t.Fatal(err)
	}

	// Wrap the door-lock node's HPE with the situational layer.
	doors, _ := c.Node(car.NodeDoorLocks)
	wrapped := New(engines[car.NodeDoorLocks], c.Scheduler().Now)
	err = wrapped.AddRule(&SituationalDeny{
		Label: "no-unlock-in-motion",
		When: SituationFunc{Name: "vehicle in motion", Fn: func() bool {
			return c.State().ActualSpeed > 0
		}},
		Direction: canbus.Read,
		IDs:       policy.SingleID(car.IDDoorCommand),
	})
	if err != nil {
		t.Fatal(err)
	}
	doors.SetInlineFilter(wrapped)

	// Parked: remote lock then unlock both work.
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().DoorsLocked {
		t.Fatal("parked lock failed")
	}
	if err := c.UnlockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if c.State().DoorsLocked {
		t.Fatal("parked unlock blocked (false positive)")
	}

	// Driving: lock first, then the abused credential tries to unlock.
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	c.StartTraffic(time.Millisecond, 5*time.Millisecond, 60) // speed 60
	c.Scheduler().Run()
	if c.State().ActualSpeed != 60 {
		t.Fatal("speed not established")
	}
	if err := c.UnlockDoors(); err != nil { // legitimate credential, abused
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().DoorsLocked {
		t.Fatal("in-motion unlock succeeded despite situational rule")
	}
	if wrapped.Stats().RuleBlocked["no-unlock-in-motion"] == 0 {
		t.Error("situational rule did not record the block")
	}
}

// TestFloodingScenario: a compromised sensor floods its own legitimate
// speed broadcast. The identifier layer grants every frame; the rate rule
// caps the flood.
func TestFloodingScenario(t *testing.T) {
	c := car.MustNew(car.Config{})
	sensors, _ := c.Node(car.NodeSensors)
	limiter := New(canbus.PermissiveFilter{}, c.Scheduler().Now)
	err := limiter.AddRule(&RateLimit{
		Label:        "speed-broadcast-budget",
		Direction:    canbus.Write,
		IDs:          policy.SingleID(car.IDSensorSpeed),
		MaxPerWindow: 10,
		Window:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sensors.SetInlineFilter(limiter)

	f := canbus.MustDataFrame(car.IDSensorSpeed, []byte{0, 50})
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Millisecond
		c.Scheduler().At(at, func(time.Duration) { _ = sensors.Send(f.Clone()) })
	}
	c.Scheduler().Run()
	st := sensors.Stats()
	if st.TxBlocked == 0 {
		t.Fatal("flood not limited")
	}
	// 100 attempts over 100 ms at 10-per-100ms: roughly 10-11 pass.
	if st.TxCompleted > 15 {
		t.Errorf("flood passed %d frames, budget ~10", st.TxCompleted)
	}
	if st.TxCompleted == 0 {
		t.Error("legitimate broadcasts fully starved")
	}
}

func TestEngineStatsSnapshotIsolated(t *testing.T) {
	e := New(nil, nil)
	st := e.Stats()
	st.RuleBlocked["injected"] = 99
	if e.Stats().RuleBlocked["injected"] != 0 {
		t.Error("Stats exposes internal map")
	}
}

// TestEngineResetRestoresFreshDecisions drives a rate-limited engine to
// exhaustion on a clock that then restarts (the pooled-arena pattern: the
// scheduler resets to time zero between runs): without Reset the stale
// window keeps blocking; after Reset the engine must decide exactly like a
// freshly built one.
func TestEngineResetRestoresFreshDecisions(t *testing.T) {
	clk := &tickClock{}
	e := New(nil, clk.Clock())
	if err := e.AddRule(&RateLimit{
		Label:        "budget",
		Direction:    canbus.Write,
		IDs:          policy.SingleID(0x123),
		MaxPerWindow: 2,
		Window:       10 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	f := frame(0x123)
	for i := 0; i < 5; i++ {
		clk.now = time.Duration(i) * time.Millisecond
		e.Decide(canbus.Write, f)
	}
	if e.Stats().RuleBlocked["budget"] != 3 {
		t.Fatalf("expected 3 budget blocks, got %d", e.Stats().RuleBlocked["budget"])
	}

	// Virtual clock restarts; the stale window must not leak through Reset.
	clk.now = 0
	e.Reset()
	if got := e.Stats(); got.Decisions != 0 || len(got.RuleBlocked) != 0 {
		t.Fatalf("Reset left counters behind: %+v", got)
	}
	if e.Decide(canbus.Write, f) != canbus.Grant {
		t.Error("reset engine blocked the first post-reset frame")
	}
	if rules := e.Rules(); len(rules) != 1 || rules[0] != "budget" {
		t.Errorf("Reset must keep installed rules, got %v", rules)
	}
}

// TestSingleOwnerDecidesIdentically drives the same rate-limited decision
// sequence through a locked engine and a single-owner one: verdicts and
// counters must match exactly, and the single-owner fast path must not
// allocate (it exists precisely because the locked path's per-decision rules
// snapshot dominated campaign-sweep allocation profiles).
func TestSingleOwnerDecidesIdentically(t *testing.T) {
	build := func(single bool) (*Engine, *tickClock) {
		clk := &tickClock{}
		e := New(nil, clk.Clock())
		if err := e.AddRule(&RateLimit{
			Label:        "budget",
			Direction:    canbus.Write,
			IDs:          policy.SingleID(0x123),
			MaxPerWindow: 2,
			Window:       10 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		e.SetSingleOwner(single)
		return e, clk
	}
	locked, lclk := build(false)
	single, sclk := build(true)
	f := frame(0x123)
	for i := 0; i < 8; i++ {
		now := time.Duration(i) * 3 * time.Millisecond
		lclk.now, sclk.now = now, now
		lv := locked.Decide(canbus.Write, f)
		sv := single.Decide(canbus.Write, f)
		if lv != sv {
			t.Fatalf("decision %d: locked=%v single=%v", i, lv, sv)
		}
	}
	ls, ss := locked.Stats(), single.Stats()
	if ls.Decisions != ss.Decisions || ls.Granted != ss.Granted ||
		ls.BaseBlocked != ss.BaseBlocked || ls.RuleBlocked["budget"] != ss.RuleBlocked["budget"] {
		t.Errorf("stats diverged: locked=%+v single=%+v", ls, ss)
	}

	granted := frame(0x124) // outside the rule's ID set: pure grant path
	if allocs := testing.AllocsPerRun(200, func() {
		single.Decide(canbus.Write, granted)
	}); allocs != 0 {
		t.Errorf("single-owner grant path allocates %.1f objects/op, want 0", allocs)
	}
}
