package car

import "repro/internal/canbus"

// frameForTest builds a standard data frame for in-package tests.
func frameForTest(id uint32, data ...byte) (canbus.Frame, error) {
	return canbus.NewDataFrame(id, data)
}
