package car

import (
	"testing"
	"time"
)

func TestInitialState(t *testing.T) {
	c := MustNew(Config{})
	s := c.State()
	if !s.Propulsion || !s.EPSActive || !s.EngineRunning || !s.ModemEnabled || !s.TrackingActive {
		t.Errorf("initial state wrong: %+v", s)
	}
	if s.DoorsLocked || s.AlarmArmed || s.FailSafeTriggered {
		t.Errorf("initial state wrong: %+v", s)
	}
	if c.Mode() != ModeNormal {
		t.Errorf("initial mode = %v", c.Mode())
	}
}

func TestTopologyMatchesFig2(t *testing.T) {
	c := MustNew(Config{})
	for _, name := range AllNodes {
		if _, ok := c.Node(name); !ok {
			t.Errorf("node %s missing from bus", name)
		}
	}
	if len(c.Bus().Nodes()) != len(AllNodes) {
		t.Errorf("bus has %d nodes, want %d", len(c.Bus().Nodes()), len(AllNodes))
	}
}

func TestLockUnlockDoors(t *testing.T) {
	c := MustNew(Config{})
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().DoorsLocked {
		t.Fatal("doors not locked")
	}
	if err := c.UnlockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if c.State().DoorsLocked {
		t.Fatal("doors not unlocked")
	}
}

func TestCrashResponse(t *testing.T) {
	c := MustNew(Config{})
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if err := c.TriggerCrash(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	s := c.State()
	if !s.FailSafeTriggered {
		t.Error("fail-safe not triggered")
	}
	if s.Propulsion {
		t.Error("propulsion not cut on crash")
	}
	if s.DoorsLocked {
		t.Error("doors not unlocked for rescue access")
	}
}

func TestObstacleStopAndRestore(t *testing.T) {
	c := MustNew(Config{})
	if err := c.ObstacleStop(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if c.State().Propulsion {
		t.Fatal("obstacle report did not stop propulsion")
	}
	if err := c.RestorePropulsion(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().Propulsion {
		t.Fatal("propulsion not restored")
	}
}

func TestArmAlarm(t *testing.T) {
	c := MustNew(Config{})
	if err := c.ArmAlarm(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().AlarmArmed {
		t.Error("alarm not armed")
	}
}

func TestModeSwitching(t *testing.T) {
	c := MustNew(Config{})
	for _, m := range AllModes {
		c.SetMode(m)
		if c.Mode() != m {
			t.Errorf("mode = %v after SetMode(%v)", c.Mode(), m)
		}
	}
}

func TestPeriodicTraffic(t *testing.T) {
	c := MustNew(Config{})
	c.StartTraffic(10*time.Millisecond, 100*time.Millisecond, 72)
	c.Run(200 * time.Millisecond)
	s := c.State()
	if s.ActualSpeed != 72 {
		t.Errorf("ActualSpeed = %d, want 72", s.ActualSpeed)
	}
	if s.DisplayedSpeed != 72 {
		t.Errorf("DisplayedSpeed = %d, want 72", s.DisplayedSpeed)
	}
	st := c.Bus().Stats()
	// 10 rounds x 4 messages (speed, dynamics, status, tracking).
	if st.FramesDelivered != 40 {
		t.Errorf("FramesDelivered = %d, want 40", st.FramesDelivered)
	}
	if u := c.Bus().Utilisation(); u <= 0 || u >= 1 {
		t.Errorf("utilisation = %v, want in (0,1)", u)
	}
}

func TestTrafficStopsTrackingWhenModemDown(t *testing.T) {
	c := MustNew(Config{})
	// Disable the modem via the legitimate diagnostic path.
	c.SetMode(ModeRemoteDiag)
	diag, _ := c.Node(NodeDiagnostics)
	f, err := frameForTest(IDModemControl, OpDisable)
	if err != nil {
		t.Fatal(err)
	}
	if err := diag.Send(f); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if c.State().ModemEnabled {
		t.Fatal("modem still enabled")
	}
	before := c.Bus().Stats().FramesDelivered
	c.StartTraffic(10*time.Millisecond, 50*time.Millisecond, 10)
	c.Scheduler().Run()
	delivered := c.Bus().Stats().FramesDelivered - before
	// 5 rounds x 3 messages (no tracking reports with the modem down).
	if delivered != 15 {
		t.Errorf("delivered = %d, want 15 (tracking suppressed)", delivered)
	}
}

func TestSpoofedStatusReachesDisplayWithoutEnforcement(t *testing.T) {
	// Sanity for the INFO-2 scenario mechanics: a forged vehicle-status
	// frame changes the display but not the ground truth.
	c := MustNew(Config{})
	c.StartTraffic(10*time.Millisecond, 20*time.Millisecond, 100)
	c.Scheduler().Run()
	tele, _ := c.Node(NodeTelematics)
	tele.Controller().CompromiseFilters()
	f, err := frameForTest(IDVehicleStatus, 0x00, 0x05)
	if err != nil {
		t.Fatal(err)
	}
	if err := tele.Send(f); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	s := c.State()
	if s.DisplayedSpeed != 5 || s.ActualSpeed != 100 {
		t.Errorf("display=%d actual=%d, want 5/100", s.DisplayedSpeed, s.ActualSpeed)
	}
}
