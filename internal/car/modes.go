package car

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/policy"
)

// Table I's car modes are not free-form states: Remote Diagnostic mode is
// "reserved for maintenance by manufacturer or authorised engineer" and
// Fail-safe is "reserved for emergency situation". ModeManager enforces a
// transition matrix over Car.SetMode, requiring an authorisation credential
// where the paper reserves a mode, and keeps a transition log for audit.
//
// Unauthorised mode transitions are themselves an attack vector (Table I
// row 4 overrides fail-safe protection; row 15 falsely triggers fail-safe),
// so the matrix is part of the security model, not just bookkeeping.

// ModeAuthorizer validates a diagnostic/service credential. The core
// package provides an ed25519-backed implementation tied to the OEM key.
type ModeAuthorizer interface {
	// Authorize reports whether token authorises reserved-mode entry on
	// this vehicle.
	Authorize(token []byte) bool
}

// ModeTransition is one entry of the transition log.
type ModeTransition struct {
	// At is the virtual time of the transition attempt.
	At time.Duration
	// From and To are the modes involved.
	From, To policy.Mode
	// Authorized reports whether a valid credential accompanied the request.
	Authorized bool
	// Granted reports whether the transition happened.
	Granted bool
}

// String renders one log line.
func (t ModeTransition) String() string {
	outcome := "denied"
	if t.Granted {
		outcome = "granted"
	}
	return fmt.Sprintf("%v %s -> %s (%s, authorized=%v)", t.At, t.From, t.To, outcome, t.Authorized)
}

// Mode transition errors.
var (
	ErrModeUnauthorized = errors.New("car: mode transition requires authorisation")
	ErrModeForbidden    = errors.New("car: mode transition not permitted")
	ErrModeUnknown      = errors.New("car: unknown mode")
)

// ModeManager gates mode changes on the transition matrix.
type ModeManager struct {
	car  *Car
	auth ModeAuthorizer

	mu  sync.Mutex
	log []ModeTransition
}

// NewModeManager wraps a car. auth may be nil, in which case every
// reserved transition is denied (fail closed).
func NewModeManager(c *Car, auth ModeAuthorizer) *ModeManager {
	return &ModeManager{car: c, auth: auth}
}

// transitionKind classifies an edge of the matrix.
type transitionKind uint8

const (
	transitionFree transitionKind = iota + 1
	transitionAuth
	transitionDenied
)

// matrix returns the kind of the (from, to) edge.
func matrix(from, to policy.Mode) transitionKind {
	if from == to {
		return transitionFree
	}
	switch from {
	case ModeNormal:
		switch to {
		case ModeRemoteDiag:
			return transitionAuth // reserved for authorised engineers
		case ModeFailSafe:
			return transitionFree // emergencies cannot wait for credentials
		}
	case ModeRemoteDiag:
		switch to {
		case ModeNormal:
			return transitionFree
		case ModeFailSafe:
			return transitionFree // emergency during maintenance
		}
	case ModeFailSafe:
		switch to {
		case ModeNormal:
			return transitionAuth // leaving fail-safe is a service action
		case ModeRemoteDiag:
			return transitionAuth // crash investigation by authorised staff
		}
	}
	return transitionDenied
}

// Request attempts a transition to the target mode with an optional
// credential. On success the car's mode changes (and with it, instantly,
// every deployed policy engine's active tables).
func (m *ModeManager) Request(to policy.Mode, token []byte) error {
	valid := false
	switch to {
	case ModeNormal, ModeRemoteDiag, ModeFailSafe:
		valid = true
	}
	if !valid {
		return fmt.Errorf("%w: %q", ErrModeUnknown, to)
	}
	from := m.car.Mode()
	authorized := token != nil && m.auth != nil && m.auth.Authorize(token)
	kind := matrix(from, to)
	granted := false
	switch kind {
	case transitionFree:
		granted = true
	case transitionAuth:
		granted = authorized
	}
	m.mu.Lock()
	m.log = append(m.log, ModeTransition{
		At: m.car.Scheduler().Now(), From: from, To: to,
		Authorized: authorized, Granted: granted,
	})
	m.mu.Unlock()
	if !granted {
		if kind == transitionAuth {
			return fmt.Errorf("%w: %s -> %s", ErrModeUnauthorized, from, to)
		}
		return fmt.Errorf("%w: %s -> %s", ErrModeForbidden, from, to)
	}
	m.car.SetMode(to)
	return nil
}

// Log returns a copy of the transition log (oldest first).
func (m *ModeManager) Log() []ModeTransition {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ModeTransition(nil), m.log...)
}
