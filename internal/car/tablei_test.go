package car

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/threatmodel"
)

// tableIRow is one expected Table I row from the paper, transcribed
// verbatim: STRIDE letters, the five DREAD components with their average,
// and the policy letter. The test asserts that our rubric-driven pipeline
// *computes* exactly these values from the scenario encodings.
type tableIRow struct {
	threatID string
	asset    string
	stride   string
	dread    string
	policy   string
}

// paperTableI transcribes the paper's Table I in row order.
var paperTableI = []tableIRow{
	{ThreatECUSpoofLocks, AssetEVECU, "STD", "8,5,4,6,4 (5.4)", "R"},
	{ThreatECUSpoofSensors, AssetEVECU, "STD", "8,5,4,6,4 (5.4)", "R"},
	{ThreatECUTrackingOff, AssetEVECU, "SD", "6,3,3,6,4 (4.4)", "RW"},
	{ThreatECUFailsafeOvrd, AssetEVECU, "STE", "5,5,5,7,6 (5.6)", "R"},
	{ThreatEPSDeactivate, AssetEPS, "STD", "5,5,5,6,7 (5.6)", "R"},
	{ThreatEngineDeactivate, AssetEngine, "STD", "6,5,4,7,5 (5.4)", "R"},
	{ThreatConnCritModify, AssetConnectivity, "STIDE", "7,5,5,9,4 (6.0)", "R"},
	{ThreatConnPrivacy, AssetConnectivity, "TIE", "7,5,5,6,5 (5.6)", "R"},
	{ThreatConnModemOffEmg, AssetConnectivity, "TDE", "6,6,7,8,6 (6.6)", "RW"},
	{ThreatConnModemOffSens, AssetConnectivity, "TDE", "6,6,7,8,6 (6.6)", "R"},
	{ThreatInfoEscalate, AssetInfotainment, "STE", "7,5,6,8,6 (6.4)", "R"},
	{ThreatInfoStatusMod, AssetInfotainment, "STR", "3,5,6,4,5 (4.6)", "R"},
	{ThreatDoorUnlockMotion, AssetDoorLocks, "TDE", "8,5,3,8,5 (5.8)", "R"},
	{ThreatDoorLockAccident, AssetDoorLocks, "TDE", "8,6,7,8,5 (6.8)", "W"},
	{ThreatSafetyFalseTrig, AssetSafety, "STE", "7,4,5,8,4 (5.6)", "R"},
	{ThreatSafetyAlarmOff, AssetSafety, "TE", "9,4,5,9,4 (6.2)", "W"},
}

// TestTableIReproduction is the headline Table I check: every row's STRIDE
// classification, DREAD tuple (with average) and policy letter must be
// computed exactly as printed in the paper.
func TestTableIReproduction(t *testing.T) {
	a, err := Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Threats) != len(paperTableI) {
		t.Fatalf("analysis produced %d threats, want %d", len(a.Threats), len(paperTableI))
	}
	for _, row := range paperTableI {
		row := row
		t.Run(row.threatID, func(t *testing.T) {
			rt, ok := a.Threat(row.threatID)
			if !ok {
				t.Fatalf("threat %s missing from analysis", row.threatID)
			}
			if rt.Asset != row.asset {
				t.Errorf("asset = %q, want %q", rt.Asset, row.asset)
			}
			if got := rt.Stride.String(); got != row.stride {
				t.Errorf("STRIDE = %s, want %s", got, row.stride)
			}
			if got := rt.Score.String(); got != row.dread {
				t.Errorf("DREAD = %s, want %s", got, row.dread)
			}
			if got := rt.Policy.String(); got != row.policy {
				t.Errorf("policy = %s, want %s", got, row.policy)
			}
		})
	}
}

func TestTableRowOrderCoversAllThreats(t *testing.T) {
	if len(TableRowOrder) != len(Threats()) {
		t.Fatalf("TableRowOrder has %d entries, threats %d", len(TableRowOrder), len(Threats()))
	}
	seen := map[string]bool{}
	for _, id := range TableRowOrder {
		if seen[id] {
			t.Errorf("duplicate row id %s", id)
		}
		seen[id] = true
	}
	for _, th := range Threats() {
		if !seen[th.ID] {
			t.Errorf("threat %s missing from TableRowOrder", th.ID)
		}
	}
}

func TestUseCaseIsValid(t *testing.T) {
	uc := UseCase()
	if err := uc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(uc.Assets) != 7 {
		t.Errorf("assets = %d, want the 7 Table I critical assets", len(uc.Assets))
	}
	if len(uc.Modes) != 3 {
		t.Errorf("modes = %d, want 3 car modes", len(uc.Modes))
	}
}

func TestCatalogConsistency(t *testing.T) {
	nodes := map[string]bool{}
	for _, n := range AllNodes {
		nodes[n] = true
	}
	seenID := map[uint32]bool{}
	for _, m := range Catalog {
		if seenID[m.ID] {
			t.Errorf("duplicate catalog ID 0x%X", m.ID)
		}
		seenID[m.ID] = true
		if len(m.Writers) == 0 || len(m.Readers) == 0 {
			t.Errorf("message %s has no writers or readers", m.Name)
		}
		for _, w := range m.Writers {
			if !nodes[w] {
				t.Errorf("message %s writer %q is not a node", m.Name, w)
			}
		}
		for _, r := range m.Readers {
			if !nodes[r] {
				t.Errorf("message %s reader %q is not a node", m.Name, r)
			}
			for _, w := range m.Writers {
				if w == r {
					t.Errorf("message %s: %q both writes and reads (loopback)", m.Name, w)
				}
			}
		}
	}
	if _, ok := MessageByID(IDECUCommand); !ok {
		t.Error("MessageByID failed for catalog entry")
	}
	if _, ok := MessageByID(0xFFFF); ok {
		t.Error("MessageByID found ghost id")
	}
	if _, ok := MessageByName("ecu-command"); !ok {
		t.Error("MessageByName failed")
	}
	if _, ok := MessageByName("ghost"); ok {
		t.Error("MessageByName found ghost")
	}
}

func TestDerivedPolicyMatchesCatalog(t *testing.T) {
	a, err := Analyze()
	if err != nil {
		t.Fatal(err)
	}
	set, err := threatmodel.DerivePolicies(a, "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every catalog flow must be allowed in its modes and denied outside
	// them; undeclared flows must be denied.
	for _, m := range Catalog {
		modes := m.Modes
		if len(modes) == 0 {
			modes = AllModes
		}
		allowed := map[policy.Mode]bool{}
		for _, mode := range modes {
			allowed[mode] = true
		}
		for _, mode := range AllModes {
			for _, w := range m.Writers {
				got := set.Decide(w, mode, policy.ActWrite, m.ID)
				want := policy.Deny
				if allowed[mode] {
					want = policy.Allow
				}
				if got != want {
					t.Errorf("%s write by %s in %s = %v, want %v", m.Name, w, mode, got, want)
				}
			}
			for _, r := range m.Readers {
				got := set.Decide(r, mode, policy.ActRead, m.ID)
				want := policy.Deny
				if allowed[mode] {
					want = policy.Allow
				}
				if got != want {
					t.Errorf("%s read by %s in %s = %v, want %v", m.Name, r, mode, got, want)
				}
			}
			// A non-reader, non-writer node gets nothing.
			if set.Decide(NodeDiagnostics, mode, policy.ActWrite, IDECUCommand) != policy.Deny {
				t.Error("diagnostics may write ecu-command")
			}
		}
	}
}
