// Package car instantiates the paper's connected-car case study (§V): the
// CAN topology of Fig. 2, the node internals of Fig. 3, the three car
// modes, the legitimate communication matrix, and the sixteen threat
// scenarios of Table I encoded as qualitative facts from which the STRIDE
// classes, DREAD scores and policy letters are computed.
package car

import (
	"repro/internal/policy"
)

// Node names of the Fig. 2 topology. These are the stations on the shared
// CAN bus; assets map onto them.
const (
	NodeEVECU        = "EV-ECU"
	NodeEPS          = "EPS"
	NodeEngine       = "Engine"
	NodeTelematics   = "Telematics"
	NodeInfotainment = "Infotainment"
	NodeDoorLocks    = "DoorLocks"
	NodeSafety       = "SafetyCritical"
	NodeSensors      = "Sensors"
	NodeDiagnostics  = "Diagnostics"
)

// AllNodes lists every station of the topology in Fig. 2 order.
var AllNodes = []string{
	NodeEVECU, NodeEPS, NodeEngine, NodeTelematics, NodeInfotainment,
	NodeDoorLocks, NodeSafety, NodeSensors, NodeDiagnostics,
}

// Car modes (Table I columns).
const (
	// ModeNormal is standard vehicle functionality (driving, parked).
	ModeNormal policy.Mode = "Normal"
	// ModeRemoteDiag is reserved for maintenance by the manufacturer or an
	// authorised engineer.
	ModeRemoteDiag policy.Mode = "RemoteDiag"
	// ModeFailSafe is reserved for emergency situations.
	ModeFailSafe policy.Mode = "FailSafe"
)

// AllModes lists the car modes.
var AllModes = []policy.Mode{ModeNormal, ModeRemoteDiag, ModeFailSafe}

// CAN message identifiers of the case study. Lower IDs carry
// higher-criticality (higher-priority) traffic, as is conventional.
const (
	// IDECUCommand disables/enables the propulsion mechanism. Legitimate
	// writers are the door locks (locked+alarmed), the safety-critical
	// module (crash) and the sensors (obstacle) — exactly the three
	// circumstances §V-A lists.
	IDECUCommand uint32 = 0x010
	// IDEPSCommand deactivates/engages electronic power steering.
	IDEPSCommand uint32 = 0x020
	// IDEngineCommand controls engine start/stop.
	IDEngineCommand uint32 = 0x030
	// IDSensorSpeed is the periodic speed broadcast.
	IDSensorSpeed uint32 = 0x100
	// IDSensorDynamics carries acceleration/brake/transmission readings.
	IDSensorDynamics uint32 = 0x101
	// IDObstacle is the sensors' obstacle report; the EV-ECU and the
	// safety module decide on it (sensors report, they do not command).
	IDObstacle uint32 = 0x102
	// IDVehicleStatus carries GPS and aggregate car status values.
	IDVehicleStatus uint32 = 0x110
	// IDDoorCommand locks/unlocks the doors.
	IDDoorCommand uint32 = 0x200
	// IDDoorStatus is the door state broadcast.
	IDDoorStatus uint32 = 0x210
	// IDTrackingReport is the telematics anti-theft tracking report.
	IDTrackingReport uint32 = 0x300
	// IDModemControl enables/disables the cellular modem.
	IDModemControl uint32 = 0x310
	// IDFailSafeTrigger signals a safety-critical event (crash, emergency).
	IDFailSafeTrigger uint32 = 0x500
	// IDAlarmControl arms/disarms the alarm and locking system.
	IDAlarmControl uint32 = 0x510
	// IDFirmwareUpdate is the firmware update channel (diagnostic mode only).
	IDFirmwareUpdate uint32 = 0x600
	// IDDiagRequest is the OBD-II style diagnostic request.
	IDDiagRequest uint32 = 0x7DF
)

// Message describes one catalog entry: who legitimately writes it, who
// legitimately reads it, and in which modes the flow is required. The
// policy model (least privilege) is generated from this catalog.
type Message struct {
	// ID is the CAN identifier.
	ID uint32
	// Name is a short label.
	Name string
	// Writers lists nodes permitted to transmit the message.
	Writers []string
	// Readers lists nodes that need to receive the message.
	Readers []string
	// Modes restricts the flow to car modes (empty = all modes).
	Modes []policy.Mode
}

// Catalog is the full legitimate communication catalog of the connected
// car. Everything outside this catalog is denied under the derived policy.
var Catalog = []Message{
	{
		// Propulsion may be commanded only by the door-lock module (car
		// locked and alarmed) and the safety module (crash response) — the
		// circumstances §V-A lists. Sensors *report* via IDObstacle; the
		// decision stays with the ECU. Readable in Normal mode only: in
		// Fail-safe the protection must not be overridable (Table I row 4).
		ID: IDECUCommand, Name: "ecu-command",
		Writers: []string{NodeDoorLocks, NodeSafety},
		Readers: []string{NodeEVECU},
		Modes:   []policy.Mode{ModeNormal},
	},
	{
		ID: IDEPSCommand, Name: "eps-command",
		Writers: []string{NodeEVECU, NodeSafety},
		Readers: []string{NodeEPS},
	},
	{
		ID: IDEngineCommand, Name: "engine-command",
		Writers: []string{NodeEVECU, NodeSafety},
		Readers: []string{NodeEngine},
	},
	{
		ID: IDSensorSpeed, Name: "sensor-speed",
		Writers: []string{NodeSensors},
		Readers: []string{NodeEVECU, NodeEPS, NodeEngine, NodeInfotainment, NodeTelematics, NodeSafety, NodeDoorLocks},
	},
	{
		ID: IDSensorDynamics, Name: "sensor-dynamics",
		Writers: []string{NodeSensors},
		Readers: []string{NodeEVECU, NodeEngine, NodeSafety},
	},
	{
		ID: IDObstacle, Name: "obstacle-report",
		Writers: []string{NodeSensors},
		Readers: []string{NodeEVECU, NodeSafety},
	},
	{
		ID: IDVehicleStatus, Name: "vehicle-status",
		Writers: []string{NodeEVECU},
		Readers: []string{NodeInfotainment, NodeTelematics, NodeDiagnostics},
	},
	{
		// Remote lock/unlock is a Normal-mode function; in Fail-safe the
		// locks obey only the fail-safe trigger (Table I row 14: a lock
		// command arriving during an accident must be refused).
		ID: IDDoorCommand, Name: "door-command",
		Writers: []string{NodeTelematics},
		Readers: []string{NodeDoorLocks},
		Modes:   []policy.Mode{ModeNormal},
	},
	{
		ID: IDDoorStatus, Name: "door-status",
		Writers: []string{NodeDoorLocks},
		Readers: []string{NodeEVECU, NodeTelematics, NodeSafety, NodeInfotainment},
	},
	{
		ID: IDTrackingReport, Name: "tracking-report",
		Writers: []string{NodeTelematics},
		Readers: []string{NodeDiagnostics},
	},
	{
		ID: IDModemControl, Name: "modem-control",
		Writers: []string{NodeDiagnostics},
		Readers: []string{NodeTelematics},
		Modes:   []policy.Mode{ModeRemoteDiag},
	},
	{
		// Only the safety module may raise the fail-safe trigger; sensors
		// feed it observations through IDObstacle (Table I row 15: a forged
		// trigger unlocks the vehicle).
		ID: IDFailSafeTrigger, Name: "fail-safe-trigger",
		Writers: []string{NodeSafety},
		Readers: []string{NodeEVECU, NodeDoorLocks, NodeTelematics, NodeEngine, NodeEPS},
	},
	{
		ID: IDAlarmControl, Name: "alarm-control",
		Writers: []string{NodeDoorLocks, NodeTelematics},
		Readers: []string{NodeSafety},
	},
	{
		ID: IDFirmwareUpdate, Name: "firmware-update",
		Writers: []string{NodeDiagnostics},
		Readers: []string{NodeEVECU, NodeEPS, NodeEngine, NodeTelematics, NodeInfotainment, NodeDoorLocks, NodeSafety},
		Modes:   []policy.Mode{ModeRemoteDiag},
	},
	{
		ID: IDDiagRequest, Name: "diag-request",
		Writers: []string{NodeDiagnostics},
		Readers: []string{NodeEVECU, NodeEPS, NodeEngine, NodeTelematics, NodeInfotainment, NodeDoorLocks, NodeSafety, NodeSensors},
		Modes:   []policy.Mode{ModeRemoteDiag},
	},
}

// MessageByID returns the catalog entry for id.
func MessageByID(id uint32) (Message, bool) {
	for _, m := range Catalog {
		if m.ID == id {
			return m, true
		}
	}
	return Message{}, false
}

// MessageByName returns the catalog entry with the given name.
func MessageByName(name string) (Message, bool) {
	for _, m := range Catalog {
		if m.Name == name {
			return m, true
		}
	}
	return Message{}, false
}
