package car

import (
	"repro/internal/policy"
	"repro/internal/threatmodel"
)

// Asset names (Table I "Critical Assets" column).
const (
	AssetEVECU        = "EV-ECU"
	AssetEPS          = "EPS"
	AssetEngine       = "Engine"
	AssetConnectivity = "3G/4G/WiFi"
	AssetInfotainment = "Infotainment"
	AssetDoorLocks    = "Door locks"
	AssetSafety       = "Safety Critical"
)

// Entry point names (Table I "Entry Points" column).
const (
	EntryDoorLocksSafety = "Door locks, safety critical"
	EntrySensors         = "Sensors"
	EntryConnectivity    = "3G/4G/WiFi"
	EntryAnyNode         = "Any node"
	EntryEVECUSensors    = "EV-ECU, Sensors"
	EntryInfotainment    = "Infotainment system"
	EntryEmergencyDoors  = "Emergency, door locks"
	EntrySensorsAirbags  = "Sensors, Air bags"
	EntryMediaBrowser    = "Media player browser"
	EntrySensorsEVECU    = "Sensors, EV-ECU"
	EntryConnManual      = "3G/4G/WiFi, Manual open"
	EntryConnSafety      = "3G/4G/WiFi, Safety critical"
)

// UseCase builds the connected-car use case: assets, entry points and the
// legitimate communication matrix generated from the message catalog.
func UseCase() threatmodel.UseCase {
	uc := threatmodel.UseCase{
		Name: "connected-car",
		Description: "A connected car with interconnected systems of differing " +
			"criticality: vehicle controls, sensor-based critical safety, " +
			"infotainment, telematics and cellular network access, joined by a " +
			"shared CAN bus (ISO 11898).",
		Modes: AllModes,
		Assets: []threatmodel.Asset{
			{Name: AssetEVECU, Node: NodeEVECU, Critical: true,
				Description: "Electronic vehicle ECU controlling propulsion (accel, brake, transmission)"},
			{Name: AssetEPS, Node: NodeEPS, Critical: true,
				Description: "Electronic power steering"},
			{Name: AssetEngine, Node: NodeEngine, Critical: true,
				Description: "Engine control"},
			{Name: AssetConnectivity, Node: NodeTelematics, Critical: true,
				Description: "Cellular and WiFi connectivity: telemetry, firmware update, emergency services, theft deactivation"},
			{Name: AssetInfotainment, Node: NodeInfotainment, Critical: false,
				Description: "Infotainment system: media, browser, navigation display"},
			{Name: AssetDoorLocks, Node: NodeDoorLocks, Critical: true,
				Description: "Central door locking"},
			{Name: AssetSafety, Node: NodeSafety, Critical: true,
				Description: "Safety-critical devices: air bags, alarm, fail-safe logic"},
		},
		EntryPoints: []threatmodel.EntryPoint{
			{Name: EntryDoorLocksSafety, Exposes: []string{AssetEVECU},
				Description: "Door lock and safety-critical messages consumed by the EV-ECU"},
			{Name: EntrySensors, Exposes: []string{AssetEVECU, AssetEngine, AssetSafety},
				Description: "Sensor broadcasts (accel, brake, transmission, obstacle)"},
			{Name: EntryConnectivity, Exposes: []string{AssetEVECU, AssetConnectivity, AssetDoorLocks},
				Description: "3G/4G/WiFi remote interfaces"},
			{Name: EntryAnyNode, Exposes: []string{AssetEPS},
				Description: "Any CAN node (broadcast bus reaches the EPS)"},
			{Name: EntryEVECUSensors, Exposes: []string{AssetConnectivity},
				Description: "EV-ECU and sensor traffic consumed by telematics"},
			{Name: EntryInfotainment, Exposes: []string{AssetConnectivity},
				Description: "Infotainment system sharing the radio/modem hardware"},
			{Name: EntryEmergencyDoors, Exposes: []string{AssetConnectivity},
				Description: "Emergency call and door lock signalling through the modem"},
			{Name: EntrySensorsAirbags, Exposes: []string{AssetConnectivity},
				Description: "Sensor and air bag signalling through the modem"},
			{Name: EntryMediaBrowser, Exposes: []string{AssetInfotainment},
				Description: "Media player browser on the infotainment display"},
			{Name: EntrySensorsEVECU, Exposes: []string{AssetInfotainment},
				Description: "Car status values (GPS, speed) shown by infotainment"},
			{Name: EntryConnManual, Exposes: []string{AssetDoorLocks},
				Description: "Remote (3G/4G/WiFi) and manual door opening paths"},
			{Name: EntryConnSafety, Exposes: []string{AssetDoorLocks},
				Description: "Remote and safety-critical door lock triggers"},
		},
		Comm: commMatrix(),
	}
	return uc
}

// commMatrix expands the message catalog into least-privilege communication
// requirements: one write requirement per (message, writer) and one read
// requirement per (message, reader).
func commMatrix() []threatmodel.CommRequirement {
	var out []threatmodel.CommRequirement
	for _, m := range Catalog {
		for _, w := range m.Writers {
			out = append(out, threatmodel.CommRequirement{
				Subject:   w,
				Action:    policy.ActWrite,
				IDs:       policy.SingleID(m.ID),
				Modes:     m.Modes,
				Rationale: m.Name + " tx " + w,
			})
		}
		for _, r := range m.Readers {
			out = append(out, threatmodel.CommRequirement{
				Subject:   r,
				Action:    policy.ActRead,
				IDs:       policy.SingleID(m.ID),
				Modes:     m.Modes,
				Rationale: m.Name + " rx " + r,
			})
		}
	}
	return out
}
