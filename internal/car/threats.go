package car

import (
	"repro/internal/dread"
	"repro/internal/policy"
	"repro/internal/stride"
	"repro/internal/threatmodel"
)

// Threat identifiers, in Table I row order.
const (
	ThreatECUSpoofLocks    = "EVECU-1" // spoofed data via door locks / safety critical
	ThreatECUSpoofSensors  = "EVECU-2" // spoofed data via sensors
	ThreatECUTrackingOff   = "EVECU-3" // disabled remote tracking after theft
	ThreatECUFailsafeOvrd  = "EVECU-4" // fail-safe protection override to reactivate vehicle
	ThreatEPSDeactivate    = "EPS-1"   // EPS deactivation through compromised CAN node
	ThreatEngineDeactivate = "ENG-1"   // deactivation through compromised sensor
	ThreatConnCritModify   = "CONN-1"  // critical component modification during operation
	ThreatConnPrivacy      = "CONN-2"  // privacy attack using modified radio firmware
	ThreatConnModemOffEmg  = "CONN-3"  // prevent fail-safe comms by disabling modem (emergency/doors)
	ThreatConnModemOffSens = "CONN-4"  // prevent fail-safe comms by disabling modem (sensors/airbags)
	ThreatInfoEscalate     = "INFO-1"  // browser exploit to gain higher control level
	ThreatInfoStatusMod    = "INFO-2"  // modification of car status values (GPS, speed)
	ThreatDoorUnlockMotion = "DOOR-1"  // unlock attempt while in motion
	ThreatDoorLockAccident = "DOOR-2"  // lock mechanism triggered during accident
	ThreatSafetyFalseTrig  = "SAFE-1"  // false triggering of fail-safe mode to unlock vehicle
	ThreatSafetyAlarmOff   = "SAFE-2"  // disable alarm and locking system to allow theft
)

// Threats returns the sixteen Table I threat scenarios in row order. The
// STRIDE string, DREAD tuple and policy letter of every row are *computed*
// from these qualitative facts by threatmodel.Analyze; the expected paper
// values are asserted by the test suite and recorded in EXPERIMENTS.md.
func Threats() []threatmodel.Threat {
	return []threatmodel.Threat{
		{
			ID:          ThreatECUSpoofLocks,
			Goal:        "propulsion-off",
			Description: "Spoofed data over CANbus causing disablement of ECU",
			Asset:       AssetEVECU,
			EntryPoints: []string{EntryDoorLocksSafety},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, DisruptsService: true}, // STD
			Assessment: dread.Assessment{
				Damage:          dread.DamageSafety,      // 8: propulsion unresponsive while driven
				Reproducibility: dread.ReproReliable,     // 5: works with bus access
				Exploitability:  dread.ExploitSpecialist, // 4: needs ECU / CAN layout knowledge
				AffectedUsers:   dread.AffectedOwner,     // 6
				Discoverability: dread.DiscoverObscure,   // 4: needs vehicle internals knowledge
			},
			Vector: threatmodel.VectorInbound, // R: permit only reads at the ECU
		},
		{
			ID:          ThreatECUSpoofSensors,
			Goal:        "propulsion-off",
			Description: "Spoofed data over CANbus causing disablement of ECU",
			Asset:       AssetEVECU,
			EntryPoints: []string{EntrySensors},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, DisruptsService: true}, // STD
			Assessment: dread.Assessment{
				Damage:          dread.DamageSafety,
				Reproducibility: dread.ReproReliable,
				Exploitability:  dread.ExploitSpecialist,
				AffectedUsers:   dread.AffectedOwner,
				Discoverability: dread.DiscoverObscure,
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatECUTrackingOff,
			Goal:        "tracking-off",
			Description: "Disabled remote tracking system after theft",
			Asset:       AssetEVECU,
			EntryPoints: []string{EntryConnectivity},
			Modes:       []policy.Mode{ModeNormal, ModeFailSafe},
			Effects:     stride.Effects{ForgesIdentity: true, DisruptsService: true}, // SD
			Assessment: dread.Assessment{
				Damage:          dread.DamageServiceLoss, // 6: anti-theft service lost
				Reproducibility: dread.ReproHard,         // 3: needs the theft precondition
				Exploitability:  dread.ExploitExpert,     // 3
				AffectedUsers:   dread.AffectedOwner,     // 6
				Discoverability: dread.DiscoverObscure,   // 4
			},
			Vector: threatmodel.VectorBidirectional, // RW
		},
		{
			ID:          ThreatECUFailsafeOvrd,
			Goal:        "propulsion-on",
			Description: "Fail-safe protection override to reactivate vehicle",
			Asset:       AssetEVECU,
			EntryPoints: []string{EntryConnectivity},
			Modes:       []policy.Mode{ModeFailSafe},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, EscalatesPrivilege: true}, // STE
			Assessment: dread.Assessment{
				Damage:          dread.DamageDegraded,    // 5
				Reproducibility: dread.ReproReliable,     // 5
				Exploitability:  dread.ExploitSkilled,    // 5
				AffectedUsers:   dread.AffectedOccupants, // 7
				Discoverability: dread.DiscoverKnown,     // 6
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatEPSDeactivate,
			Goal:        "eps-off",
			Description: "EPS deactivation through compromised CAN node.",
			Asset:       AssetEPS,
			EntryPoints: []string{EntryAnyNode},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, DisruptsService: true}, // STD
			Assessment: dread.Assessment{
				Damage:          dread.DamageDegraded,  // 5: steering assist lost, car drivable
				Reproducibility: dread.ReproReliable,   // 5
				Exploitability:  dread.ExploitSkilled,  // 5
				AffectedUsers:   dread.AffectedOwner,   // 6
				Discoverability: dread.DiscoverObvious, // 7: any node can reach the EPS
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatEngineDeactivate,
			Goal:        "engine-off",
			Description: "Deactivation through compromised sensor",
			Asset:       AssetEngine,
			EntryPoints: []string{EntrySensors},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, DisruptsService: true}, // STD
			Assessment: dread.Assessment{
				Damage:          dread.DamageSubsystem,   // 6
				Reproducibility: dread.ReproReliable,     // 5
				Exploitability:  dread.ExploitSpecialist, // 4
				AffectedUsers:   dread.AffectedOccupants, // 7
				Discoverability: dread.DiscoverResearch,  // 5
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatConnCritModify,
			Goal:        "firmware-modified",
			Description: "Critical component modification during operation",
			Asset:       AssetConnectivity,
			EntryPoints: []string{EntryEVECUSensors},
			Modes:       []policy.Mode{ModeNormal, ModeRemoteDiag},
			Effects: stride.Effects{ // STIDE
				ForgesIdentity: true, ModifiesData: true, DisclosesInfo: true,
				DisruptsService: true, EscalatesPrivilege: true,
			},
			Assessment: dread.Assessment{
				Damage:          dread.DamageControl,   // 7
				Reproducibility: dread.ReproReliable,   // 5
				Exploitability:  dread.ExploitSkilled,  // 5
				AffectedUsers:   dread.AffectedFleet,   // 9: platform-wide modification channel
				Discoverability: dread.DiscoverObscure, // 4
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatConnPrivacy,
			Goal:        "exfil",
			Description: "Privacy attack using modified radio firmware",
			Asset:       AssetConnectivity,
			EntryPoints: []string{EntryInfotainment},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ModifiesData: true, DisclosesInfo: true, EscalatesPrivilege: true}, // TIE
			Assessment: dread.Assessment{
				Damage:          dread.DamageControl,    // 7
				Reproducibility: dread.ReproReliable,    // 5
				Exploitability:  dread.ExploitSkilled,   // 5
				AffectedUsers:   dread.AffectedOwner,    // 6
				Discoverability: dread.DiscoverResearch, // 5
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatConnModemOffEmg,
			Goal:        "modem-off",
			Description: "Prevent operation of fail-safe comms by disabling modem.",
			Asset:       AssetConnectivity,
			EntryPoints: []string{EntryEmergencyDoors},
			Modes:       []policy.Mode{ModeNormal, ModeFailSafe},
			Effects:     stride.Effects{ModifiesData: true, DisruptsService: true, EscalatesPrivilege: true}, // TDE
			Assessment: dread.Assessment{
				Damage:          dread.DamageServiceLoss,  // 6: emergency call capability lost
				Reproducibility: dread.ReproAlways,        // 6
				Exploitability:  dread.ExploitEasy,        // 7
				AffectedUsers:   dread.AffectedBystanders, // 8
				Discoverability: dread.DiscoverKnown,      // 6
			},
			Vector: threatmodel.VectorBidirectional, // RW
		},
		{
			ID:          ThreatConnModemOffSens,
			Goal:        "modem-off",
			Description: "Prevent operation of fail-safe comms by disabling modem.",
			Asset:       AssetConnectivity,
			EntryPoints: []string{EntrySensorsAirbags},
			Modes:       []policy.Mode{ModeNormal, ModeFailSafe},
			Effects:     stride.Effects{ModifiesData: true, DisruptsService: true, EscalatesPrivilege: true}, // TDE
			Assessment: dread.Assessment{
				Damage:          dread.DamageServiceLoss,
				Reproducibility: dread.ReproAlways,
				Exploitability:  dread.ExploitEasy,
				AffectedUsers:   dread.AffectedBystanders,
				Discoverability: dread.DiscoverKnown,
			},
			Vector: threatmodel.VectorInbound, // R
		},
		{
			ID:          ThreatInfoEscalate,
			Goal:        "firmware-modified",
			Description: "Exploit to gain access to higher control level",
			Asset:       AssetInfotainment,
			EntryPoints: []string{EntryMediaBrowser},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, EscalatesPrivilege: true}, // STE
			Assessment: dread.Assessment{
				Damage:          dread.DamageControl,      // 7
				Reproducibility: dread.ReproReliable,      // 5
				Exploitability:  dread.ExploitToolkit,     // 6: browser exploit kits exist
				AffectedUsers:   dread.AffectedBystanders, // 8
				Discoverability: dread.DiscoverKnown,      // 6
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatInfoStatusMod,
			Goal:        "display-mismatch",
			Description: "Modification of car status values, GPS, speed, etc",
			Asset:       AssetInfotainment,
			EntryPoints: []string{EntrySensorsEVECU},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, DeniesAction: true}, // STR
			Assessment: dread.Assessment{
				Damage:          dread.DamageCosmetic,   // 3: display falsification
				Reproducibility: dread.ReproReliable,    // 5
				Exploitability:  dread.ExploitToolkit,   // 6
				AffectedUsers:   dread.AffectedFew,      // 4
				Discoverability: dread.DiscoverResearch, // 5
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatDoorUnlockMotion,
			Goal:        "doors-unlocked",
			Description: "Unlock attempt while in motion",
			Asset:       AssetDoorLocks,
			EntryPoints: []string{EntryConnManual},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ModifiesData: true, DisruptsService: true, EscalatesPrivilege: true}, // TDE
			Assessment: dread.Assessment{
				Damage:          dread.DamageSafety,       // 8: doors open at speed
				Reproducibility: dread.ReproReliable,      // 5
				Exploitability:  dread.ExploitExpert,      // 3
				AffectedUsers:   dread.AffectedBystanders, // 8
				Discoverability: dread.DiscoverResearch,   // 5
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatDoorLockAccident,
			Goal:        "doors-locked",
			Description: "Lock mechanism triggered during accident",
			Asset:       AssetDoorLocks,
			EntryPoints: []string{EntryConnSafety},
			Modes:       []policy.Mode{ModeFailSafe},
			Effects:     stride.Effects{ModifiesData: true, DisruptsService: true, EscalatesPrivilege: true}, // TDE
			Assessment: dread.Assessment{
				Damage:          dread.DamageSafety,       // 8: occupants sealed in after a crash
				Reproducibility: dread.ReproAlways,        // 6
				Exploitability:  dread.ExploitEasy,        // 7
				AffectedUsers:   dread.AffectedBystanders, // 8
				Discoverability: dread.DiscoverResearch,   // 5
			},
			Vector: threatmodel.VectorOutbound, // W: constrain what may command the locks
		},
		{
			ID:          ThreatSafetyFalseTrig,
			Goal:        "doors-unlocked",
			Description: "False triggering of fail-safe mode to unlock vehicle",
			Asset:       AssetSafety,
			EntryPoints: []string{EntrySensors},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, EscalatesPrivilege: true}, // STE
			Assessment: dread.Assessment{
				Damage:          dread.DamageControl,      // 7
				Reproducibility: dread.ReproSituational,   // 4
				Exploitability:  dread.ExploitSkilled,     // 5
				AffectedUsers:   dread.AffectedBystanders, // 8
				Discoverability: dread.DiscoverObscure,    // 4
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID:          ThreatSafetyAlarmOff,
			Goal:        "alarm-off",
			Description: "Disable alarm and locking system to allow theft",
			Asset:       AssetSafety,
			EntryPoints: []string{EntrySensors},
			Modes:       []policy.Mode{ModeNormal},
			Effects:     stride.Effects{ModifiesData: true, EscalatesPrivilege: true}, // TE
			Assessment: dread.Assessment{
				Damage:          dread.DamageLife,       // 9
				Reproducibility: dread.ReproSituational, // 4
				Exploitability:  dread.ExploitSkilled,   // 5
				AffectedUsers:   dread.AffectedFleet,    // 9: a working theft method scales
				Discoverability: dread.DiscoverObscure,  // 4
			},
			Vector: threatmodel.VectorOutbound, // W
		},
	}
}

// Analyze runs the threat-modelling pipeline over the connected-car use
// case and its Table I threats.
func Analyze() (*threatmodel.Analysis, error) {
	return threatmodel.Analyze(UseCase(), Threats())
}

// TableRowOrder lists the threat IDs in the exact Table I row order, for
// rendering the reproduced table.
var TableRowOrder = []string{
	ThreatECUSpoofLocks, ThreatECUSpoofSensors, ThreatECUTrackingOff, ThreatECUFailsafeOvrd,
	ThreatEPSDeactivate, ThreatEngineDeactivate,
	ThreatConnCritModify, ThreatConnPrivacy, ThreatConnModemOffEmg, ThreatConnModemOffSens,
	ThreatInfoEscalate, ThreatInfoStatusMod,
	ThreatDoorUnlockMotion, ThreatDoorLockAccident,
	ThreatSafetyFalseTrig, ThreatSafetyAlarmOff,
}
