package car

import (
	"errors"
	"testing"

	"repro/internal/policy"
)

// stubAuth authorises exactly one token value.
type stubAuth struct{ want string }

func (s stubAuth) Authorize(token []byte) bool { return string(token) == s.want }

func TestModeMatrixFreeTransitions(t *testing.T) {
	c := MustNew(Config{})
	m := NewModeManager(c, stubAuth{want: "ok"})

	// Normal -> FailSafe is free (emergency).
	if err := m.Request(ModeFailSafe, nil); err != nil {
		t.Fatal(err)
	}
	if c.Mode() != ModeFailSafe {
		t.Fatal("mode not switched")
	}
	// Same-mode request is a no-op grant.
	if err := m.Request(ModeFailSafe, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeReservedTransitionsRequireAuth(t *testing.T) {
	c := MustNew(Config{})
	m := NewModeManager(c, stubAuth{want: "valid-token"})

	// Normal -> RemoteDiag without a token: denied.
	err := m.Request(ModeRemoteDiag, nil)
	if !errors.Is(err, ErrModeUnauthorized) {
		t.Fatalf("unauthenticated diag entry: %v", err)
	}
	if c.Mode() != ModeNormal {
		t.Fatal("mode changed despite denial")
	}
	// Wrong token: denied.
	if err := m.Request(ModeRemoteDiag, []byte("forged")); !errors.Is(err, ErrModeUnauthorized) {
		t.Fatalf("forged token accepted: %v", err)
	}
	// Valid token: granted.
	if err := m.Request(ModeRemoteDiag, []byte("valid-token")); err != nil {
		t.Fatal(err)
	}
	if c.Mode() != ModeRemoteDiag {
		t.Fatal("mode not switched")
	}
	// RemoteDiag -> Normal is free.
	if err := m.Request(ModeNormal, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeFailSafeExitRequiresAuth(t *testing.T) {
	c := MustNew(Config{})
	m := NewModeManager(c, stubAuth{want: "svc"})
	if err := m.Request(ModeFailSafe, nil); err != nil {
		t.Fatal(err)
	}
	// Leaving fail-safe without service credentials is exactly the Table I
	// row 4 attack ("fail-safe protection override to reactivate vehicle").
	if err := m.Request(ModeNormal, nil); !errors.Is(err, ErrModeUnauthorized) {
		t.Fatalf("fail-safe exit without credential: %v", err)
	}
	if err := m.Request(ModeNormal, []byte("svc")); err != nil {
		t.Fatal(err)
	}
}

func TestModeNilAuthorizerFailsClosed(t *testing.T) {
	c := MustNew(Config{})
	m := NewModeManager(c, nil)
	if err := m.Request(ModeRemoteDiag, []byte("anything")); !errors.Is(err, ErrModeUnauthorized) {
		t.Fatalf("nil authorizer did not fail closed: %v", err)
	}
}

func TestModeUnknownRejected(t *testing.T) {
	c := MustNew(Config{})
	m := NewModeManager(c, nil)
	if err := m.Request(policy.Mode("Turbo"), nil); !errors.Is(err, ErrModeUnknown) {
		t.Fatalf("unknown mode: %v", err)
	}
}

func TestModeTransitionLog(t *testing.T) {
	c := MustNew(Config{})
	m := NewModeManager(c, stubAuth{want: "tok"})
	_ = m.Request(ModeRemoteDiag, nil)           // denied
	_ = m.Request(ModeRemoteDiag, []byte("tok")) // granted
	_ = m.Request(ModeNormal, nil)               // granted (free)
	log := m.Log()
	if len(log) != 3 {
		t.Fatalf("log entries = %d", len(log))
	}
	if log[0].Granted || log[0].Authorized {
		t.Errorf("entry 0 = %+v", log[0])
	}
	if !log[1].Granted || !log[1].Authorized {
		t.Errorf("entry 1 = %+v", log[1])
	}
	if log[2].From != ModeRemoteDiag || log[2].To != ModeNormal || !log[2].Granted {
		t.Errorf("entry 2 = %+v", log[2])
	}
	// Log is a copy.
	log[0].Granted = true
	if m.Log()[0].Granted {
		t.Error("Log exposes internal slice")
	}
}
