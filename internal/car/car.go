package car

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Command opcodes carried in the first payload byte of command messages.
const (
	// OpDisable disables the addressed subsystem (propulsion, EPS, engine,
	// modem) or unlocks/disarms depending on the message.
	OpDisable byte = 0x01
	// OpEnable (re-)enables the addressed subsystem.
	OpEnable byte = 0x02
	// OpLock locks the doors / arms the alarm.
	OpLock byte = 0x01
	// OpUnlock unlocks the doors / disarms the alarm.
	OpUnlock byte = 0x02
)

// State is the observable vehicle state the attack harness measures. All
// fields reflect what the component processors believe, i.e. the effect of
// every frame that survived filtering.
type State struct {
	// Propulsion reports whether the EV-ECU propulsion mechanism is enabled.
	Propulsion bool
	// EPSActive reports whether power steering assistance is active.
	EPSActive bool
	// EngineRunning reports whether the engine is running.
	EngineRunning bool
	// ModemEnabled reports whether the telematics modem is operational.
	ModemEnabled bool
	// TrackingActive reports whether anti-theft tracking reports flow.
	TrackingActive bool
	// DoorsLocked reports the central locking state.
	DoorsLocked bool
	// AlarmArmed reports the alarm state.
	AlarmArmed bool
	// FailSafeTriggered reports whether a fail-safe event was processed.
	FailSafeTriggered bool
	// ActualSpeed is the ground-truth speed from the sensor cluster.
	ActualSpeed uint16
	// DisplayedSpeed is the speed the infotainment display shows.
	DisplayedSpeed uint16
	// FirmwareModified reports whether any ECU accepted a firmware-update
	// frame (the CONN-1 / INFO-1 modification channel).
	FirmwareModified bool
	// ExfilReports counts forged tracking reports that reached the
	// diagnostic backend (the CONN-2 privacy attack's exfiltration path).
	ExfilReports int
}

// Car wires the Fig. 2 topology onto a simulated bus and gives every node
// the behaviour needed to make Table I's attacks observable. It implements
// hpe.ModeSource so deployed policy engines follow mode switches.
type Car struct {
	sched *sim.Scheduler
	bus   *canbus.Bus

	mu    sync.Mutex
	mode  policy.Mode
	state State
}

// Config parameterises a Car.
type Config struct {
	// BitRate for the bus; canbus.DefaultBitRate if zero.
	BitRate int
	// ErrorRate for bus error injection; zero disables.
	ErrorRate float64
	// Seed for deterministic error injection.
	Seed uint64
}

// New builds the car: scheduler, bus, all Fig. 2 nodes with their
// acceptance filters (per the message catalog) and processor behaviours.
// The car starts in Normal mode: propulsion enabled, engine running, doors
// unlocked, alarm disarmed, modem on, tracking active.
func New(cfg Config) (*Car, error) {
	sched := &sim.Scheduler{}
	bus := canbus.New(sched, canbus.Config{
		BitRate:   cfg.BitRate,
		ErrorRate: cfg.ErrorRate,
		Seed:      cfg.Seed,
	})
	c := &Car{
		sched: sched,
		bus:   bus,
		mode:  ModeNormal,
		state: State{
			Propulsion:     true,
			EPSActive:      true,
			EngineRunning:  true,
			ModemEnabled:   true,
			TrackingActive: true,
		},
	}
	for _, name := range AllNodes {
		node, err := bus.Attach(name)
		if err != nil {
			return nil, err
		}
		c.configureNode(node)
	}
	return c, nil
}

// MustNew is New that panics on error; topology construction only fails on
// programming errors.
func MustNew(cfg Config) *Car {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Scheduler returns the simulation scheduler.
func (c *Car) Scheduler() *sim.Scheduler { return c.sched }

// Bus returns the underlying CAN bus.
func (c *Car) Bus() *canbus.Bus { return c.bus }

// Node returns the named station.
func (c *Car) Node(name string) (*canbus.Node, bool) { return c.bus.Node(name) }

// Mode implements hpe.ModeSource.
func (c *Car) Mode() policy.Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// SetMode switches the car's operating mode (Normal / RemoteDiag / FailSafe).
func (c *Car) SetMode(m policy.Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mode = m
}

// State returns a snapshot of the vehicle state.
func (c *Car) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// mutate applies fn to the state under the lock.
func (c *Car) mutate(fn func(*State)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(&c.state)
}

// configureNode installs the acceptance filters (from the catalog's reader
// lists) and the processor behaviour for one station.
func (c *Car) configureNode(node *canbus.Node) {
	name := node.Name()
	var filters []canbus.AcceptanceFilter
	for _, m := range Catalog {
		for _, r := range m.Readers {
			if r == name {
				filters = append(filters, canbus.ExactFilter(m.ID))
			}
		}
	}
	ctrl := node.Controller()
	ctrl.SetFilters(filters...)
	ctrl.SetHandler(c.handlerFor(name))
}

// handlerFor returns the processor behaviour of a station: how it reacts to
// each accepted frame. These reactions are what make Table I's attacks
// observable in State.
func (c *Car) handlerFor(name string) canbus.Handler {
	switch name {
	case NodeEVECU:
		return func(f canbus.Frame) {
			switch f.ID {
			case IDECUCommand:
				if len(f.Data) > 0 {
					c.mutate(func(s *State) { s.Propulsion = f.Data[0] != OpDisable })
				}
			case IDObstacle:
				if len(f.Data) > 0 && f.Data[0] == 0x01 {
					// Emergency stop on an imminent-obstacle report.
					c.mutate(func(s *State) { s.Propulsion = false })
				}
			case IDSensorSpeed:
				if len(f.Data) >= 2 {
					c.mutate(func(s *State) { s.ActualSpeed = binary.BigEndian.Uint16(f.Data) })
				}
			case IDFailSafeTrigger:
				c.mutate(func(s *State) {
					s.FailSafeTriggered = true
					s.Propulsion = false // crash response: cut propulsion
				})
			case IDFirmwareUpdate:
				c.mutate(func(s *State) { s.FirmwareModified = true })
			}
		}
	case NodeEPS:
		return func(f canbus.Frame) {
			if f.ID == IDEPSCommand && len(f.Data) > 0 {
				c.mutate(func(s *State) { s.EPSActive = f.Data[0] != OpDisable })
			}
		}
	case NodeEngine:
		return func(f canbus.Frame) {
			if f.ID == IDEngineCommand && len(f.Data) > 0 {
				c.mutate(func(s *State) { s.EngineRunning = f.Data[0] != OpDisable })
			}
		}
	case NodeTelematics:
		return func(f canbus.Frame) {
			switch f.ID {
			case IDModemControl:
				if len(f.Data) > 0 {
					c.mutate(func(s *State) {
						s.ModemEnabled = f.Data[0] != OpDisable
						if !s.ModemEnabled {
							s.TrackingActive = false
						}
					})
				}
			case IDFirmwareUpdate:
				c.mutate(func(s *State) { s.FirmwareModified = true })
			}
		}
	case NodeInfotainment:
		return func(f canbus.Frame) {
			if f.ID == IDVehicleStatus && len(f.Data) >= 2 {
				c.mutate(func(s *State) { s.DisplayedSpeed = binary.BigEndian.Uint16(f.Data) })
			}
		}
	case NodeDoorLocks:
		return func(f canbus.Frame) {
			if f.ID == IDDoorCommand && len(f.Data) > 0 {
				switch f.Data[0] {
				case OpLock:
					c.mutate(func(s *State) { s.DoorsLocked = true })
				case OpUnlock:
					c.mutate(func(s *State) { s.DoorsLocked = false })
				}
			}
			if f.ID == IDFailSafeTrigger {
				// Crash response: unlock for rescue access.
				c.mutate(func(s *State) { s.DoorsLocked = false })
			}
		}
	case NodeSafety:
		return func(f canbus.Frame) {
			if f.ID == IDAlarmControl && len(f.Data) > 0 {
				switch f.Data[0] {
				case OpLock:
					c.mutate(func(s *State) { s.AlarmArmed = true })
				case OpUnlock:
					c.mutate(func(s *State) { s.AlarmArmed = false })
				}
			}
		}
	case NodeDiagnostics:
		return func(f canbus.Frame) {
			// Forged tracking reports carry the exfiltration marker 0xEE;
			// counting them measures the CONN-2 privacy attack.
			if f.ID == IDTrackingReport && len(f.Data) > 0 && f.Data[0] == exfilMarker {
				c.mutate(func(s *State) { s.ExfilReports++ })
			}
		}
	default:
		return func(canbus.Frame) {}
	}
}

// send transmits a frame from a named station.
func (c *Car) send(from string, id uint32, data ...byte) error {
	node, ok := c.bus.Node(from)
	if !ok {
		return fmt.Errorf("car: unknown node %q", from)
	}
	f, err := canbus.NewDataFrame(id, data)
	if err != nil {
		return err
	}
	return node.Send(f)
}

// StartTraffic schedules the periodic legitimate traffic of the car over
// the given horizon (relative to the current virtual time): sensor
// broadcasts, the EV-ECU vehicle-status message and telematics tracking
// reports. speed is the simulated vehicle speed.
func (c *Car) StartTraffic(period, horizon time.Duration, speed uint16) {
	var speedBuf [2]byte
	binary.BigEndian.PutUint16(speedBuf[:], speed)
	for at := period; at <= horizon; at += period {
		c.sched.After(at, func(time.Duration) {
			// Sensors broadcast speed and dynamics.
			_ = c.send(NodeSensors, IDSensorSpeed, speedBuf[0], speedBuf[1])
			_ = c.send(NodeSensors, IDSensorDynamics, 0x10, 0x20, 0x30)
			// EV-ECU publishes the vehicle status consumed by infotainment.
			_ = c.send(NodeEVECU, IDVehicleStatus, speedBuf[0], speedBuf[1], 0x00)
			// Telematics uploads a tracking report while the modem is up.
			if c.State().ModemEnabled {
				_ = c.send(NodeTelematics, IDTrackingReport, 0x01)
			}
		})
	}
}

// Legitimate control actions, used by tests and scenarios to confirm the
// policy model does not break required functionality (no false positives).

// LockDoors issues a remote lock via telematics.
func (c *Car) LockDoors() error { return c.send(NodeTelematics, IDDoorCommand, OpLock) }

// UnlockDoors issues a remote unlock via telematics.
func (c *Car) UnlockDoors() error { return c.send(NodeTelematics, IDDoorCommand, OpUnlock) }

// ArmAlarm arms the alarm from the door-lock module.
func (c *Car) ArmAlarm() error { return c.send(NodeDoorLocks, IDAlarmControl, OpLock) }

// TriggerCrash raises the fail-safe trigger from the safety module, as a
// genuine crash would.
func (c *Car) TriggerCrash() error { return c.send(NodeSafety, IDFailSafeTrigger, 0x01) }

// exfilMarker tags forged tracking reports used by the privacy attack.
const exfilMarker byte = 0xEE

// ObstacleStop sends the sensors' imminent-obstacle report, which makes the
// EV-ECU cut propulsion — one of the legitimate disablement circumstances
// of §V-A (approaching a stationary object when parking).
func (c *Car) ObstacleStop() error { return c.send(NodeSensors, IDObstacle, 0x01) }

// RestorePropulsion re-enables propulsion from the safety module.
func (c *Car) RestorePropulsion() error { return c.send(NodeSafety, IDECUCommand, OpEnable) }

// Run drains the simulation until the given virtual deadline.
func (c *Car) Run(until time.Duration) { c.sched.RunUntil(until) }
