package car

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/canbus"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Command opcodes carried in the first payload byte of command messages.
const (
	// OpDisable disables the addressed subsystem (propulsion, EPS, engine,
	// modem) or unlocks/disarms depending on the message.
	OpDisable byte = 0x01
	// OpEnable (re-)enables the addressed subsystem.
	OpEnable byte = 0x02
	// OpLock locks the doors / arms the alarm.
	OpLock byte = 0x01
	// OpUnlock unlocks the doors / disarms the alarm.
	OpUnlock byte = 0x02
)

// State is the observable vehicle state the attack harness measures. All
// fields reflect what the component processors believe, i.e. the effect of
// every frame that survived filtering.
type State struct {
	// Propulsion reports whether the EV-ECU propulsion mechanism is enabled.
	Propulsion bool
	// EPSActive reports whether power steering assistance is active.
	EPSActive bool
	// EngineRunning reports whether the engine is running.
	EngineRunning bool
	// ModemEnabled reports whether the telematics modem is operational.
	ModemEnabled bool
	// TrackingActive reports whether anti-theft tracking reports flow.
	TrackingActive bool
	// DoorsLocked reports the central locking state.
	DoorsLocked bool
	// AlarmArmed reports the alarm state.
	AlarmArmed bool
	// FailSafeTriggered reports whether a fail-safe event was processed.
	FailSafeTriggered bool
	// ActualSpeed is the ground-truth speed from the sensor cluster.
	ActualSpeed uint16
	// DisplayedSpeed is the speed the infotainment display shows.
	DisplayedSpeed uint16
	// FirmwareModified reports whether any ECU accepted a firmware-update
	// frame (the CONN-1 / INFO-1 modification channel).
	FirmwareModified bool
	// ExfilReports counts forged tracking reports that reached the
	// diagnostic backend (the CONN-2 privacy attack's exfiltration path).
	ExfilReports int
}

// Car wires the Fig. 2 topology onto a simulated bus and gives every node
// the behaviour needed to make Table I's attacks observable. It implements
// hpe.ModeSource so deployed policy engines follow mode switches.
//
// A Car shares its Bus's single-owner execution model: all methods must be
// called from the goroutine driving the owning scheduler (or from whichever
// goroutine currently owns the vehicle, with ownership handed over through a
// synchronising operation). Dropping the former internal lock removed a
// mutex acquisition from every policy decision (Mode) and every processor
// reaction (state mutation) on the simulation hot path.
type Car struct {
	sched *sim.Scheduler
	bus   *canbus.Bus

	mode  policy.Mode
	state State

	// Station handles and prebuilt frames for the hot helper paths: the
	// periodic traffic and the functional probes re-send identical frames
	// thousands of times per fleet sweep, so they are constructed once here
	// instead of per call (Node.Send clones into the transmit queue, so
	// sharing the backing payloads is safe).
	sensors, safety, telematics, doorLocks *canbus.Node

	lockFrame     canbus.Frame
	unlockFrame   canbus.Frame
	armFrame      canbus.Frame
	crashFrame    canbus.Frame
	obstacleFrame canbus.Frame
	restoreFrame  canbus.Frame
	dynamicsFrame canbus.Frame
	trackingFrame canbus.Frame
}

// initialState is the observable state of a freshly built car: propulsion
// enabled, engine running, doors unlocked, alarm disarmed, modem on,
// tracking active.
func initialState() State {
	return State{
		Propulsion:     true,
		EPSActive:      true,
		EngineRunning:  true,
		ModemEnabled:   true,
		TrackingActive: true,
	}
}

// Config parameterises a Car.
type Config struct {
	// BitRate for the bus; canbus.DefaultBitRate if zero.
	BitRate int
	// ErrorRate for bus error injection; zero disables.
	ErrorRate float64
	// Seed for deterministic error injection.
	Seed uint64
}

// New builds the car: scheduler, bus, all Fig. 2 nodes with their
// acceptance filters (per the message catalog) and processor behaviours.
// The car starts in Normal mode: propulsion enabled, engine running, doors
// unlocked, alarm disarmed, modem on, tracking active.
func New(cfg Config) (*Car, error) {
	sched := &sim.Scheduler{}
	bus := canbus.New(sched, canbus.Config{
		BitRate:   cfg.BitRate,
		ErrorRate: cfg.ErrorRate,
		Seed:      cfg.Seed,
	})
	c := &Car{
		sched: sched,
		bus:   bus,
		mode:  ModeNormal,
		state: initialState(),
	}
	for _, name := range AllNodes {
		node, err := bus.Attach(name)
		if err != nil {
			return nil, err
		}
		c.configureNode(node)
	}
	bus.MarkPristine()
	c.sensors, _ = bus.Node(NodeSensors)
	c.safety, _ = bus.Node(NodeSafety)
	c.telematics, _ = bus.Node(NodeTelematics)
	c.doorLocks, _ = bus.Node(NodeDoorLocks)
	c.lockFrame = canbus.MustDataFrame(IDDoorCommand, []byte{OpLock})
	c.unlockFrame = canbus.MustDataFrame(IDDoorCommand, []byte{OpUnlock})
	c.armFrame = canbus.MustDataFrame(IDAlarmControl, []byte{OpLock})
	c.crashFrame = canbus.MustDataFrame(IDFailSafeTrigger, []byte{0x01})
	c.obstacleFrame = canbus.MustDataFrame(IDObstacle, []byte{0x01})
	c.restoreFrame = canbus.MustDataFrame(IDECUCommand, []byte{OpEnable})
	c.dynamicsFrame = canbus.MustDataFrame(IDSensorDynamics, []byte{0x10, 0x20, 0x30})
	c.trackingFrame = canbus.MustDataFrame(IDTrackingReport, []byte{0x01})
	return c, nil
}

// Reset restores the car to the state New(cfg) would return, without
// rebuilding anything: the scheduler drains in place, the bus snaps back to
// its pristine Fig. 2 topology (nodes attached since construction — e.g. an
// outside attacker — are discarded, inline filters and acceptance filters
// restored, counters zeroed, RNG reseeded from cfg), the mode returns to
// Normal and the observable state to its power-on values. Allocation-free on
// the steady state, which is what lets fleet workers reuse one vehicle for
// thousands of scenario runs.
func (c *Car) Reset(cfg Config) {
	c.sched.Reset()
	c.bus.Reset(canbus.Config{
		BitRate:   cfg.BitRate,
		ErrorRate: cfg.ErrorRate,
		Seed:      cfg.Seed,
	})
	c.mode = ModeNormal
	c.state = initialState()
}

// Snapshot captures the full mutable state of a quiescent car: the
// scheduler counters, the bus state (topology counters, filters, RNG
// position) and the vehicle-level mode and observable state. One Snapshot
// value is reusable across captures — the attack arena holds one per
// checkpoint and overwrites it in place.
type Snapshot struct {
	sched sim.SchedulerSnapshot
	bus   canbus.BusSnapshot
	mode  policy.Mode
	state State
}

// Quiescent reports whether the car satisfies Snapshot's preconditions: the
// scheduler drained and the bus idle with its pristine topology. The attack
// arena probes it before capturing so a violated prefix contract surfaces as
// a typed error the sweep supervisor can quarantine, not a process panic.
func (c *Car) Quiescent() bool { return c.sched.Quiescent() && c.bus.Quiescent() }

// Snapshot captures the car's state into dst for a later RestoreFrom. The
// car must be quiescent: the scheduler drained (Scheduler().Run() returned)
// and the bus idle with its pristine topology — the state any scenario
// prefix leaves behind. Panics otherwise (see sim.Scheduler.Snapshot and
// canbus.Bus.Snapshot).
func (c *Car) Snapshot(dst *Snapshot) {
	dst.sched = c.sched.Snapshot()
	c.bus.Snapshot(&dst.bus)
	dst.mode = c.mode
	dst.state = c.state
}

// RestoreFrom rewinds the car to a state captured by Snapshot: the
// scheduler's clock and counters, the bus's full state (post-capture nodes
// discarded exactly as Reset discards them), the mode and the observable
// state. A restored car continues byte-identically to one that replayed the
// captured prefix from a fresh Reset — the equivalence the attack arena's
// prefix checkpointing is built on and its property tests assert.
func (c *Car) RestoreFrom(src *Snapshot) {
	c.sched.RestoreFrom(src.sched)
	c.bus.RestoreFrom(&src.bus)
	c.mode = src.mode
	c.state = src.state
}

// MustNew is New that panics on error; topology construction only fails on
// programming errors.
func MustNew(cfg Config) *Car {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Scheduler returns the simulation scheduler.
func (c *Car) Scheduler() *sim.Scheduler { return c.sched }

// Bus returns the underlying CAN bus.
func (c *Car) Bus() *canbus.Bus { return c.bus }

// Node returns the named station.
func (c *Car) Node(name string) (*canbus.Node, bool) { return c.bus.Node(name) }

// Mode implements hpe.ModeSource.
func (c *Car) Mode() policy.Mode { return c.mode }

// SetMode switches the car's operating mode (Normal / RemoteDiag / FailSafe).
func (c *Car) SetMode(m policy.Mode) { c.mode = m }

// State returns a snapshot of the vehicle state.
func (c *Car) State() State { return c.state }

// mutate applies fn to the state.
func (c *Car) mutate(fn func(*State)) { fn(&c.state) }

// configureNode installs the acceptance filters (from the catalog's reader
// lists) and the processor behaviour for one station.
func (c *Car) configureNode(node *canbus.Node) {
	name := node.Name()
	var filters []canbus.AcceptanceFilter
	for _, m := range Catalog {
		for _, r := range m.Readers {
			if r == name {
				filters = append(filters, canbus.ExactFilter(m.ID))
			}
		}
	}
	ctrl := node.Controller()
	ctrl.SetFilters(filters...)
	ctrl.SetHandler(c.handlerFor(name))
}

// handlerFor returns the processor behaviour of a station: how it reacts to
// each accepted frame. These reactions are what make Table I's attacks
// observable in State.
func (c *Car) handlerFor(name string) canbus.Handler {
	switch name {
	case NodeEVECU:
		return func(f canbus.Frame) {
			switch f.ID {
			case IDECUCommand:
				if len(f.Data) > 0 {
					c.mutate(func(s *State) { s.Propulsion = f.Data[0] != OpDisable })
				}
			case IDObstacle:
				if len(f.Data) > 0 && f.Data[0] == 0x01 {
					// Emergency stop on an imminent-obstacle report.
					c.mutate(func(s *State) { s.Propulsion = false })
				}
			case IDSensorSpeed:
				if len(f.Data) >= 2 {
					c.mutate(func(s *State) { s.ActualSpeed = binary.BigEndian.Uint16(f.Data) })
				}
			case IDFailSafeTrigger:
				c.mutate(func(s *State) {
					s.FailSafeTriggered = true
					s.Propulsion = false // crash response: cut propulsion
				})
			case IDFirmwareUpdate:
				c.mutate(func(s *State) { s.FirmwareModified = true })
			}
		}
	case NodeEPS:
		return func(f canbus.Frame) {
			if f.ID == IDEPSCommand && len(f.Data) > 0 {
				c.mutate(func(s *State) { s.EPSActive = f.Data[0] != OpDisable })
			}
		}
	case NodeEngine:
		return func(f canbus.Frame) {
			if f.ID == IDEngineCommand && len(f.Data) > 0 {
				c.mutate(func(s *State) { s.EngineRunning = f.Data[0] != OpDisable })
			}
		}
	case NodeTelematics:
		return func(f canbus.Frame) {
			switch f.ID {
			case IDModemControl:
				if len(f.Data) > 0 {
					c.mutate(func(s *State) {
						s.ModemEnabled = f.Data[0] != OpDisable
						if !s.ModemEnabled {
							s.TrackingActive = false
						}
					})
				}
			case IDFirmwareUpdate:
				c.mutate(func(s *State) { s.FirmwareModified = true })
			}
		}
	case NodeInfotainment:
		return func(f canbus.Frame) {
			if f.ID == IDVehicleStatus && len(f.Data) >= 2 {
				c.mutate(func(s *State) { s.DisplayedSpeed = binary.BigEndian.Uint16(f.Data) })
			}
		}
	case NodeDoorLocks:
		return func(f canbus.Frame) {
			if f.ID == IDDoorCommand && len(f.Data) > 0 {
				switch f.Data[0] {
				case OpLock:
					c.mutate(func(s *State) { s.DoorsLocked = true })
				case OpUnlock:
					c.mutate(func(s *State) { s.DoorsLocked = false })
				}
			}
			if f.ID == IDFailSafeTrigger {
				// Crash response: unlock for rescue access.
				c.mutate(func(s *State) { s.DoorsLocked = false })
			}
		}
	case NodeSafety:
		return func(f canbus.Frame) {
			if f.ID == IDAlarmControl && len(f.Data) > 0 {
				switch f.Data[0] {
				case OpLock:
					c.mutate(func(s *State) { s.AlarmArmed = true })
				case OpUnlock:
					c.mutate(func(s *State) { s.AlarmArmed = false })
				}
			}
		}
	case NodeDiagnostics:
		return func(f canbus.Frame) {
			// Forged tracking reports carry the exfiltration marker 0xEE;
			// counting them measures the CONN-2 privacy attack.
			if f.ID == IDTrackingReport && len(f.Data) > 0 && f.Data[0] == exfilMarker {
				c.mutate(func(s *State) { s.ExfilReports++ })
			}
		}
	default:
		return func(canbus.Frame) {}
	}
}

// send transmits a frame from a named station.
func (c *Car) send(from string, id uint32, data ...byte) error {
	node, ok := c.bus.Node(from)
	if !ok {
		return fmt.Errorf("car: unknown node %q", from)
	}
	f, err := canbus.NewDataFrame(id, data)
	if err != nil {
		return err
	}
	return node.Send(f)
}

// StartTraffic schedules the periodic legitimate traffic of the car over
// the given horizon (relative to the current virtual time): sensor
// broadcasts, the EV-ECU vehicle-status message and telematics tracking
// reports. speed is the simulated vehicle speed. The frames are built once
// and shared by every tick (Send clones into the transmit queue).
func (c *Car) StartTraffic(period, horizon time.Duration, speed uint16) {
	var speedBuf [2]byte
	binary.BigEndian.PutUint16(speedBuf[:], speed)
	speedFrame := canbus.MustDataFrame(IDSensorSpeed, speedBuf[:])
	statusFrame := canbus.MustDataFrame(IDVehicleStatus, []byte{speedBuf[0], speedBuf[1], 0x00})
	evecu, _ := c.bus.Node(NodeEVECU)
	tick := func(time.Duration) {
		// Sensors broadcast speed and dynamics.
		_ = c.sensors.Send(speedFrame)
		_ = c.sensors.Send(c.dynamicsFrame)
		// EV-ECU publishes the vehicle status consumed by infotainment.
		_ = evecu.Send(statusFrame)
		// Telematics uploads a tracking report while the modem is up.
		if c.state.ModemEnabled {
			_ = c.telematics.Send(c.trackingFrame)
		}
	}
	for at := period; at <= horizon; at += period {
		c.sched.After(at, tick)
	}
}

// Legitimate control actions, used by tests and scenarios to confirm the
// policy model does not break required functionality (no false positives).

// LockDoors issues a remote lock via telematics.
func (c *Car) LockDoors() error { return c.telematics.Send(c.lockFrame) }

// UnlockDoors issues a remote unlock via telematics.
func (c *Car) UnlockDoors() error { return c.telematics.Send(c.unlockFrame) }

// ArmAlarm arms the alarm from the door-lock module.
func (c *Car) ArmAlarm() error { return c.doorLocks.Send(c.armFrame) }

// TriggerCrash raises the fail-safe trigger from the safety module, as a
// genuine crash would.
func (c *Car) TriggerCrash() error { return c.safety.Send(c.crashFrame) }

// exfilMarker tags forged tracking reports used by the privacy attack.
const exfilMarker byte = 0xEE

// ObstacleStop sends the sensors' imminent-obstacle report, which makes the
// EV-ECU cut propulsion — one of the legitimate disablement circumstances
// of §V-A (approaching a stationary object when parking).
func (c *Car) ObstacleStop() error { return c.sensors.Send(c.obstacleFrame) }

// RestorePropulsion re-enables propulsion from the safety module.
func (c *Car) RestorePropulsion() error { return c.safety.Send(c.restoreFrame) }

// Run drains the simulation until the given virtual deadline.
func (c *Car) Run(until time.Duration) { c.sched.RunUntil(until) }
