package car

import (
	"testing"
	"time"

	"repro/internal/canbus"
)

// driveScenario runs a deterministic mixed workload — traffic, legitimate
// actions, a crash — and returns the observable outcome.
func driveScenario(t *testing.T, c *Car) (State, canbus.BusStats, uint64) {
	t.Helper()
	c.StartTraffic(time.Millisecond, 8*time.Millisecond, 77)
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	if err := c.ArmAlarm(); err != nil {
		t.Fatal(err)
	}
	c.Run(4 * time.Millisecond)
	if err := c.TriggerCrash(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	return c.State(), c.Bus().Stats(), c.Scheduler().Steps()
}

// TestCarResetEquivalence dirties a car the way a harness run does, resets
// it, and checks the next scenario plays out exactly as on a fresh car.
func TestCarResetEquivalence(t *testing.T) {
	cfg := Config{Seed: 99, ErrorRate: 0.05}
	used := MustNew(cfg)

	// Dirty phase: rogue node, compromised firmware, mode switch, traffic.
	rogue, err := used.Bus().Attach("rogue")
	if err != nil {
		t.Fatal(err)
	}
	_ = rogue.Send(canbus.MustDataFrame(IDECUCommand, []byte{OpDisable}))
	if n, ok := used.Node(NodeEVECU); ok {
		n.Controller().CompromiseFilters()
		n.Controller().SetFilters()
	}
	used.SetMode(ModeFailSafe)
	used.StartTraffic(time.Millisecond, 5*time.Millisecond, 130)
	used.Scheduler().Run()
	if used.State() == initialState() {
		t.Fatal("dirty phase did not change observable state")
	}

	used.Reset(cfg)
	if used.State() != initialState() {
		t.Fatalf("state after reset: %+v", used.State())
	}
	if used.Mode() != ModeNormal {
		t.Fatalf("mode after reset: %v", used.Mode())
	}
	if _, ok := used.Node("rogue"); ok {
		t.Fatal("rogue node survived reset")
	}

	gotState, gotStats, gotSteps := driveScenario(t, used)
	fresh := MustNew(cfg)
	wantState, wantStats, wantSteps := driveScenario(t, fresh)

	if gotState != wantState {
		t.Errorf("state after reset %+v, fresh %+v", gotState, wantState)
	}
	if gotStats != wantStats {
		t.Errorf("bus stats after reset %+v, fresh %+v", gotStats, wantStats)
	}
	if gotSteps != wantSteps {
		t.Errorf("scheduler steps %d, fresh %d", gotSteps, wantSteps)
	}
}

// TestCarResetReconfigures checks a reset can change seed and error rate,
// matching a fresh car built with the new config.
func TestCarResetReconfigures(t *testing.T) {
	used := MustNew(Config{Seed: 1})
	driveScenario(t, used)

	next := Config{Seed: 1234, ErrorRate: 0.2}
	used.Reset(next)
	gotState, gotStats, _ := driveScenario(t, used)
	fresh := MustNew(next)
	wantState, wantStats, _ := driveScenario(t, fresh)
	if gotState != wantState || gotStats != wantStats {
		t.Errorf("reconfigured reset diverged: %+v/%+v vs %+v/%+v",
			gotState, gotStats, wantState, wantStats)
	}
	if gotStats.Errors == 0 {
		t.Error("reconfigured error rate produced no bus errors; reseed not applied")
	}
}
