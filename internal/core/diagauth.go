package core

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"

	"repro/internal/car"
)

// This file backs car.ModeAuthorizer with the OEM's signing identity:
// Remote Diagnostic mode is "reserved for maintenance by manufacturer or
// authorised engineer" (§V), so entry requires a token the OEM signed for
// this specific vehicle. Tokens are single-purpose and vehicle-bound; they
// carry no expiry because the simulation has no wall clock, which a real
// deployment would add.

// diagClaim is the signed payload of a diagnostic token.
type diagClaim struct {
	VehicleID string `json:"vehicle_id"`
	Purpose   string `json:"purpose"`
}

// diagPurpose is the fixed purpose string, preventing cross-protocol reuse
// of signatures (e.g. a policy-bundle signature replayed as a token).
const diagPurpose = "diagnostic-mode-entry"

// diagToken is the distributable credential.
type diagToken struct {
	Claim     diagClaim `json:"claim"`
	Signature []byte    `json:"signature"`
}

// IssueDiagToken signs a diagnostic-entry credential for one vehicle.
func (o *OEM) IssueDiagToken(vehicleID string) ([]byte, error) {
	claim := diagClaim{VehicleID: vehicleID, Purpose: diagPurpose}
	payload, err := json.Marshal(claim)
	if err != nil {
		return nil, err
	}
	tok := diagToken{Claim: claim, Signature: ed25519.Sign(o.priv, payload)}
	return json.Marshal(tok)
}

// DiagAuthorizer validates diagnostic tokens for one vehicle against the
// OEM public key. It implements car.ModeAuthorizer.
type DiagAuthorizer struct {
	vehicleID string
	pub       ed25519.PublicKey
}

var _ car.ModeAuthorizer = (*DiagAuthorizer)(nil)

// NewDiagAuthorizer builds the vehicle-resident verifier.
func NewDiagAuthorizer(vehicleID string, pub ed25519.PublicKey) (*DiagAuthorizer, error) {
	if vehicleID == "" {
		return nil, fmt.Errorf("core: diag authorizer needs a vehicle id")
	}
	if len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("core: bad OEM public key length %d", len(pub))
	}
	return &DiagAuthorizer{vehicleID: vehicleID, pub: pub}, nil
}

// Authorize implements car.ModeAuthorizer.
func (d *DiagAuthorizer) Authorize(token []byte) bool {
	var tok diagToken
	if err := json.Unmarshal(token, &tok); err != nil {
		return false
	}
	if tok.Claim.Purpose != diagPurpose || tok.Claim.VehicleID != d.vehicleID {
		return false
	}
	payload, err := json.Marshal(tok.Claim)
	if err != nil {
		return false
	}
	return ed25519.Verify(d.pub, payload, tok.Signature)
}
