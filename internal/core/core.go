// Package core implements the paper's primary contribution: the
// policy-based security modelling and enforcement approach. It glues the
// substrates together end to end:
//
//	use case + threats --Analyze--> rated analysis (STRIDE + DREAD)
//	                   --Derive--->  security model: guidelines AND policies
//	policies --Compile--> per-node approved lists --Install--> HPE (hardware)
//	                   --DeriveMAC--> type-enforcement module   (software)
//	OEM --Sign--> policy bundle --Distribute--> Device.ApplyUpdate (hot swap)
//
// The OEM/Device pair models the post-deployment update mechanism of
// §V-A.2: a new threat is countered by shipping a signed policy bundle
// instead of redesigning the product.
package core

import (
	"crypto/ed25519"
	"fmt"
	"io"

	"repro/internal/canbus"
	"repro/internal/hpe"
	"repro/internal/mac"
	"repro/internal/policy"
	"repro/internal/threatmodel"
)

// SecurityModel is the end product of the Fig. 1 modelling process, carrying
// both countermeasure styles so they can be compared.
type SecurityModel struct {
	// Analysis is the rated threat analysis.
	Analysis *threatmodel.Analysis
	// Guidelines is the traditional guideline document (baseline).
	Guidelines *threatmodel.GuidelineModel
	// Policies is the enforceable policy set (the contribution).
	Policies *policy.Set
	// Restrictions is the per-threat Table I policy column.
	Restrictions []threatmodel.Restriction
}

// BuildModel runs the modelling pipeline end to end: analysis, guideline
// derivation and policy derivation.
func BuildModel(uc threatmodel.UseCase, threats []threatmodel.Threat, policyName string, version uint64) (*SecurityModel, error) {
	analysis, err := threatmodel.Analyze(uc, threats)
	if err != nil {
		return nil, err
	}
	set, err := threatmodel.DerivePolicies(analysis, policyName, version)
	if err != nil {
		return nil, err
	}
	return &SecurityModel{
		Analysis:     analysis,
		Guidelines:   threatmodel.DeriveGuidelines(analysis),
		Policies:     set,
		Restrictions: threatmodel.Restrictions(analysis),
	}, nil
}

// OEM holds the manufacturer's signing identity and issues policy bundles.
type OEM struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewOEM generates a signing identity from the given entropy source
// (crypto/rand.Reader in production, a deterministic reader in tests).
func NewOEM(entropy io.Reader) (*OEM, error) {
	pub, priv, err := ed25519.GenerateKey(entropy)
	if err != nil {
		return nil, fmt.Errorf("core: generating OEM key: %w", err)
	}
	return &OEM{priv: priv, pub: pub}, nil
}

// PublicKey returns the verification key devices are provisioned with.
func (o *OEM) PublicKey() ed25519.PublicKey { return o.pub }

// Issue signs a policy set into a distributable bundle.
func (o *OEM) Issue(set *policy.Set) (*policy.Bundle, error) {
	return policy.Sign(set.String(), o.priv)
}

// Device is the fielded endpoint: a policy store plus the per-node hardware
// policy engines, kept in sync by the store's update subscription. Until a
// policy is installed every engine fails closed.
type Device struct {
	store   *policy.Store
	engines map[string]*hpe.Engine
}

// Provision creates engines on every listed node of the bus and wires them
// to a policy store trusting the OEM's public key. No policy is installed
// yet; call ApplyUpdate with an OEM-issued bundle.
func Provision(bus *canbus.Bus, modes hpe.ModeSource, oemKey ed25519.PublicKey, subjects []string, deviceModes []policy.Mode) (*Device, error) {
	store := policy.NewStore(oemKey, policy.CompileOptions{
		Subjects: subjects,
		Modes:    deviceModes,
	})
	d := &Device{store: store, engines: make(map[string]*hpe.Engine, len(subjects))}
	cycles := hpe.DefaultCycleModel()
	for _, name := range subjects {
		node, ok := bus.Node(name)
		if !ok {
			return nil, fmt.Errorf("core: node %q not attached", name)
		}
		eng := hpe.New(name, modes, cycles)
		node.SetInlineFilter(eng)
		d.engines[name] = eng
	}
	store.Subscribe(func(installed *policy.Compiled) {
		for _, eng := range d.engines {
			// Install cannot fail for a non-nil compiled policy.
			_ = eng.Install(installed)
		}
	})
	return d, nil
}

// ApplyUpdate verifies and installs a policy bundle, refreshing every
// engine atomically through the store subscription.
func (d *Device) ApplyUpdate(b *policy.Bundle) error {
	_, err := d.store.Apply(b)
	return err
}

// PolicyVersion returns the installed policy version (0 before install).
func (d *Device) PolicyVersion() uint64 {
	if s := d.store.CurrentSet(); s != nil {
		return s.Version
	}
	return 0
}

// Engine returns the policy engine protecting the named node.
func (d *Device) Engine(name string) (*hpe.Engine, bool) {
	e, ok := d.engines[name]
	return e, ok
}

// Store exposes the device's policy store (read-mostly; for inspection).
func (d *Device) Store() *policy.Store { return d.store }

// FleetVehicle adapts a provisioned Device to the fleet.Vehicle interface
// so OEM-side staged rollouts (internal/fleet) can drive real devices. A
// bundle whose version the device already runs counts as success, making
// re-runs of a partially completed rollout idempotent.
type FleetVehicle struct {
	// VID is the vehicle identifier (VIN).
	VID string
	// Dev is the provisioned device.
	Dev *Device
	// AfterApply, when non-nil, runs after a successful fresh install. The
	// fleet engine (internal/engine) uses it to drive the vehicle's live
	// simulation so the newly installed policy takes effect on the bus
	// before the rollout stage is scored.
	AfterApply func()
}

// ID implements fleet.Vehicle.
func (v FleetVehicle) ID() string { return v.VID }

// Apply implements fleet.Vehicle.
func (v FleetVehicle) Apply(b *policy.Bundle) error {
	if v.Dev.PolicyVersion() >= b.Version {
		return nil // already current
	}
	if err := v.Dev.ApplyUpdate(b); err != nil {
		return err
	}
	if v.AfterApply != nil {
		v.AfterApply()
	}
	return nil
}

// MACClassCAN is the object class used by the derived software module.
const MACClassCAN mac.Class = "can_message"

// MAC permissions for the derived module.
const (
	MACPermRead  mac.Permission = "read"
	MACPermWrite mac.Permission = "write"
)

// SubjectType returns the SELinux-style domain type for a node.
func SubjectType(subject string) string { return "node_" + subject + "_t" }

// MessageType returns the SELinux-style type labelling a message ID.
func MessageType(id uint32) string { return fmt.Sprintf("can_msg_%03x_t", id) }

// DeriveMACModule renders the same least-privilege matrix as a software
// type-enforcement module (§V-B.1: SELinux-based policy enforcement). Each
// communication requirement becomes one allow rule from the node's domain
// to the message's type.
func DeriveMACModule(a *threatmodel.Analysis, name string, version uint64) (*mac.Module, error) {
	m := &mac.Module{Name: name, Version: version}
	for _, c := range a.UseCase.Comm {
		var perms []mac.Permission
		if c.Action.Has(policy.ActRead) {
			perms = append(perms, MACPermRead)
		}
		if c.Action.Has(policy.ActWrite) {
			perms = append(perms, MACPermWrite)
		}
		ids, err := c.IDs.Enumerate(policy.TableLimit)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			m.Rules = append(m.Rules, mac.AllowRule{
				SourceType: SubjectType(c.Subject),
				TargetType: MessageType(id),
				Class:      MACClassCAN,
				Perms:      perms,
			})
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MACContext builds the runtime security context for a node's application.
func MACContext(subject string) mac.Context {
	return mac.Context{User: "system_u", Role: "object_r", Type: SubjectType(subject)}
}

// MessageContext builds the security context labelling a message ID.
func MessageContext(id uint32) mac.Context {
	return mac.Context{User: "system_u", Role: "object_r", Type: MessageType(id)}
}
