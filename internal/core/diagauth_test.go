package core

import (
	"errors"
	"testing"

	"repro/internal/car"
)

func TestDiagTokenRoundTrip(t *testing.T) {
	oem, err := NewOEM(entropy(5))
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewDiagAuthorizer("VIN-123", oem.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	token, err := oem.IssueDiagToken("VIN-123")
	if err != nil {
		t.Fatal(err)
	}
	if !auth.Authorize(token) {
		t.Fatal("valid token rejected")
	}
}

func TestDiagTokenVehicleBinding(t *testing.T) {
	oem, _ := NewOEM(entropy(5))
	auth, err := NewDiagAuthorizer("VIN-123", oem.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	other, err := oem.IssueDiagToken("VIN-999")
	if err != nil {
		t.Fatal(err)
	}
	if auth.Authorize(other) {
		t.Error("token for another vehicle accepted")
	}
}

func TestDiagTokenForgeryRejected(t *testing.T) {
	oem, _ := NewOEM(entropy(5))
	mallory, _ := NewOEM(entropy(66))
	auth, err := NewDiagAuthorizer("VIN-123", oem.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	forged, err := mallory.IssueDiagToken("VIN-123")
	if err != nil {
		t.Fatal(err)
	}
	if auth.Authorize(forged) {
		t.Error("forged token accepted")
	}
	if auth.Authorize([]byte("not json")) {
		t.Error("garbage accepted")
	}
	if auth.Authorize(nil) {
		t.Error("nil token accepted")
	}
	// Bundle signatures must not double as diag tokens (purpose binding).
	m := buildModel(t, 1)
	bundle, err := oem.Issue(m.Policies)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bundle.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if auth.Authorize(raw) {
		t.Error("policy bundle accepted as diag token")
	}
}

func TestDiagAuthorizerConstruction(t *testing.T) {
	oem, _ := NewOEM(entropy(5))
	if _, err := NewDiagAuthorizer("", oem.PublicKey()); err == nil {
		t.Error("empty vehicle id accepted")
	}
	if _, err := NewDiagAuthorizer("VIN", []byte{1, 2, 3}); err == nil {
		t.Error("short key accepted")
	}
}

// TestModeManagerWithOEMTokens ties the pieces together: the paper's
// "reserved for maintenance by manufacturer or authorised engineer" becomes
// an end-to-end property of the vehicle.
func TestModeManagerWithOEMTokens(t *testing.T) {
	oem, _ := NewOEM(entropy(5))
	c := car.MustNew(car.Config{})
	auth, err := NewDiagAuthorizer("VIN-123", oem.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	mgr := car.NewModeManager(c, auth)

	if err := mgr.Request(car.ModeRemoteDiag, nil); !errors.Is(err, car.ErrModeUnauthorized) {
		t.Fatalf("entry without token: %v", err)
	}
	token, err := oem.IssueDiagToken("VIN-123")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Request(car.ModeRemoteDiag, token); err != nil {
		t.Fatal(err)
	}
	if c.Mode() != car.ModeRemoteDiag {
		t.Fatal("mode not switched")
	}
}
