package core

import (
	"bytes"
	"testing"

	"repro/internal/attack"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/mac"
	"repro/internal/policy"
)

// entropy is a deterministic reader for test key generation.
type entropy byte

func (e entropy) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(e) + byte(i)
	}
	return len(p), nil
}

func buildModel(t *testing.T, version uint64) *SecurityModel {
	t.Helper()
	m, err := BuildModel(car.UseCase(), car.Threats(), "table-i", version)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildModelProducesBothStyles(t *testing.T) {
	m := buildModel(t, 1)
	if len(m.Analysis.Threats) != 16 {
		t.Errorf("threats = %d", len(m.Analysis.Threats))
	}
	if len(m.Guidelines.Guidelines) != 16 {
		t.Errorf("guidelines = %d", len(m.Guidelines.Guidelines))
	}
	if m.Policies.Name != "table-i" || m.Policies.Version != 1 {
		t.Errorf("policy header %s/%d", m.Policies.Name, m.Policies.Version)
	}
	if len(m.Restrictions) != 16 {
		t.Errorf("restrictions = %d", len(m.Restrictions))
	}
}

func TestOEMIssueAndDeviceUpdateRoundTrip(t *testing.T) {
	oem, err := NewOEM(entropy(1))
	if err != nil {
		t.Fatal(err)
	}
	m := buildModel(t, 1)
	bundle, err := oem.Issue(m.Policies)
	if err != nil {
		t.Fatal(err)
	}

	c := car.MustNew(car.Config{})
	dev, err := Provision(c.Bus(), c, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		t.Fatal(err)
	}
	if dev.PolicyVersion() != 0 {
		t.Errorf("pre-install version = %d", dev.PolicyVersion())
	}

	// Fail-closed before install: even legitimate traffic is blocked.
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if c.State().DoorsLocked {
		t.Error("engines not fail-closed before first policy install")
	}

	if err := dev.ApplyUpdate(bundle); err != nil {
		t.Fatal(err)
	}
	if dev.PolicyVersion() != 1 {
		t.Errorf("version = %d", dev.PolicyVersion())
	}
	// Legitimate traffic flows after install.
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().DoorsLocked {
		t.Error("legitimate traffic blocked after install")
	}
	eng, ok := dev.Engine(car.NodeEVECU)
	if !ok || !eng.Installed() {
		t.Error("engine not installed via store subscription")
	}
}

func TestDeviceRejectsForgedUpdate(t *testing.T) {
	oem, _ := NewOEM(entropy(1))
	mallory, _ := NewOEM(entropy(99))
	m := buildModel(t, 1)
	forged, err := mallory.Issue(m.Policies)
	if err != nil {
		t.Fatal(err)
	}
	c := car.MustNew(car.Config{})
	dev, err := Provision(c.Bus(), c, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ApplyUpdate(forged); err == nil {
		t.Error("device accepted a forgery")
	}
	if dev.PolicyVersion() != 0 {
		t.Error("forged update installed")
	}
}

func TestProvisionUnknownNode(t *testing.T) {
	c := car.MustNew(car.Config{})
	oem, _ := NewOEM(entropy(1))
	if _, err := Provision(c.Bus(), c, oem.PublicKey(), []string{"ghost"}, car.AllModes); err == nil {
		t.Error("unknown node accepted")
	}
}

// TestPolicyUpdateCountersNewThreat is the end-to-end §V-A.2 walkthrough:
// v1 policy ships with a hole, the attack succeeds; the OEM issues v2; the
// same attack is blocked without touching device firmware.
func TestPolicyUpdateCountersNewThreat(t *testing.T) {
	oem, _ := NewOEM(entropy(7))

	// v1: the analysis missed the infotainment->modem threat, so the OEM
	// over-permissively granted infotainment a write on modem-control.
	m := buildModel(t, 1)
	v1 := *m.Policies
	v1.Rules = append(v1.Rules,
		policy.Rule{
			Name:    "legacy infotainment volume-ducking hook",
			Subject: car.NodeInfotainment,
			Effect:  policy.Allow,
			Action:  policy.ActWrite,
			IDs:     policy.SingleID(car.IDModemControl),
		},
		policy.Rule{
			Name:    "legacy always-on modem-control listener",
			Subject: car.NodeTelematics,
			Effect:  policy.Allow,
			Action:  policy.ActRead,
			IDs:     policy.SingleID(car.IDModemControl),
		})

	run := func(dev *Device, c *car.Car) bool {
		sc, ok := attack.ScenarioFor(car.ThreatConnModemOffEmg)
		if !ok {
			t.Fatal("scenario missing")
		}
		node, _ := c.Node(sc.Attacker)
		node.Controller().CompromiseFilters()
		c.SetMode(sc.Mode)
		for _, inj := range sc.Injections {
			f, err := canbus.NewDataFrame(inj.ID, inj.Data)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < inj.Repeat; i++ {
				_ = node.Send(f)
			}
		}
		c.Scheduler().Run()
		return sc.Succeeded(c.State())
	}

	// Deployment with v1: attack succeeds (new threat discovered).
	c1 := car.MustNew(car.Config{})
	dev1, err := Provision(c1.Bus(), c1, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := oem.Issue(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev1.ApplyUpdate(b1); err != nil {
		t.Fatal(err)
	}
	if !run(dev1, c1) {
		t.Fatal("precondition: v1 policy should leave the threat open")
	}

	// v2 drops the over-permissive rule: same device family, policy update
	// only. The attack is now blocked.
	m2 := buildModel(t, 2)
	b2, err := oem.Issue(m2.Policies)
	if err != nil {
		t.Fatal(err)
	}
	c2 := car.MustNew(car.Config{})
	dev2, err := Provision(c2.Bus(), c2, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev2.ApplyUpdate(b1); err != nil {
		t.Fatal(err)
	}
	if err := dev2.ApplyUpdate(b2); err != nil {
		t.Fatal(err)
	}
	if dev2.PolicyVersion() != 2 {
		t.Fatalf("version = %d", dev2.PolicyVersion())
	}
	if run(dev2, c2) {
		t.Error("v2 policy update did not counter the new threat")
	}
}

func TestDeriveMACModule(t *testing.T) {
	m := buildModel(t, 1)
	mod, err := DeriveMACModule(m.Analysis, "car-base", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := mac.NewServer()
	if err := srv.Load(mod); err != nil {
		t.Fatal(err)
	}
	// Telematics may write tracking reports...
	d := srv.Check(MACContext(car.NodeTelematics), MessageContext(car.IDTrackingReport),
		MACClassCAN, MACPermWrite)
	if !d.Allowed {
		t.Error("legitimate MAC flow denied")
	}
	// ...infotainment may not.
	d = srv.Check(MACContext(car.NodeInfotainment), MessageContext(car.IDTrackingReport),
		MACClassCAN, MACPermWrite)
	if d.Allowed {
		t.Error("illegitimate MAC flow allowed")
	}
	// Kernel compromise bypasses the software layer (the §V-B.2 contrast).
	srv.CompromiseKernel()
	d = srv.Check(MACContext(car.NodeInfotainment), MessageContext(car.IDTrackingReport),
		MACClassCAN, MACPermWrite)
	if !d.Allowed || !d.Bypassed {
		t.Error("kernel compromise should bypass the software MAC")
	}
}

// TestMACAndHPEConsistency: the software module and the hardware tables are
// derived from the same analysis and must agree on every declared flow.
func TestMACAndHPEConsistency(t *testing.T) {
	m := buildModel(t, 1)
	mod, err := DeriveMACModule(m.Analysis, "car-base", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := mac.NewServer()
	if err := srv.Load(mod); err != nil {
		t.Fatal(err)
	}
	// Note: the MAC module is mode-unaware (application layer), so compare
	// against the union over modes of the compiled policy.
	compiled, err := policy.Compile(m.Policies, policy.CompileOptions{
		Subjects: car.AllNodes, Modes: car.AllModes,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range car.Catalog {
		for _, n := range car.AllNodes {
			macRead := srv.Check(MACContext(n), MessageContext(msg.ID), MACClassCAN, MACPermRead).Allowed
			macWrite := srv.Check(MACContext(n), MessageContext(msg.ID), MACClassCAN, MACPermWrite).Allowed
			var hwRead, hwWrite bool
			nt := compiled.Node(n)
			for _, mode := range car.AllModes {
				mt := nt.Table(mode)
				hwRead = hwRead || mt.Reads.Contains(msg.ID)
				hwWrite = hwWrite || mt.Writes.Contains(msg.ID)
			}
			if macRead != hwRead || macWrite != hwWrite {
				t.Errorf("MAC/HPE disagree on %s at %s: mac r/w=%v/%v hw=%v/%v",
					msg.Name, n, macRead, macWrite, hwRead, hwWrite)
			}
		}
	}
}

func TestMACContextShapes(t *testing.T) {
	c := MACContext("EV-ECU")
	if c.Type != "node_EV-ECU_t" {
		t.Errorf("context type = %q", c.Type)
	}
	mc := MessageContext(0x10)
	if mc.Type != "can_msg_010_t" {
		t.Errorf("message type = %q", mc.Type)
	}
}

func TestNewOEMErrorPath(t *testing.T) {
	if _, err := NewOEM(badReader{}); err == nil {
		t.Error("key generation from failing reader succeeded")
	}
}

type badReader struct{}

func (badReader) Read([]byte) (int, error) { return 0, bytes.ErrTooLarge }
