// Package lifecycle models the secure product development life-cycle of the
// paper's Fig. 1 and quantifies its central claim (§V-A.3): countering a
// newly discovered threat with a policy update is far faster than the
// guideline approach's redesign / recall cycle.
//
// The model is a parameterised stage-cost pipeline. Absolute durations are
// inputs (industry-scale defaults are provided); the reproduced result is
// the *relative* cycle length and the exposure window it implies.
package lifecycle

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Day is the base unit of the default cost model.
const Day = 24 * time.Hour

// StepKind distinguishes boxes in the Fig. 1 flow.
type StepKind uint8

// Step kinds.
const (
	// Process is an activity performed by a team.
	Process StepKind = iota + 1
	// Artifact is a produced document or deliverable.
	Artifact
	// Gate is a decision/compliance checkpoint.
	Gate
)

// String returns the kind name.
func (k StepKind) String() string {
	switch k {
	case Process:
		return "process"
	case Artifact:
		return "artifact"
	case Gate:
		return "gate"
	default:
		return "invalid"
	}
}

// Step is one element of the Fig. 1 pipeline.
type Step struct {
	// Name is the Fig. 1 box label.
	Name string
	// Kind classifies the box.
	Kind StepKind
	// Detail explains the step.
	Detail string
}

// Pipeline returns the Fig. 1 secure product development life-cycle: the
// application threat modelling stages, the device security model bridging
// design and testing (the paper highlights it as the bridge that can be
// expressed as access control policies), implementation and secure
// application testing.
func Pipeline() []Step {
	return []Step{
		{Name: "Risk assessment", Kind: Process,
			Detail: "decompose the use case; identify entities, interactions and risks"},
		{Name: "Identify Assets", Kind: Process,
			Detail: "identify items of value, incl. dependent assets via data flow"},
		{Name: "Entry Points", Kind: Process,
			Detail: "map interfaces exposing critical assets to attackers"},
		{Name: "Threat Identification", Kind: Process,
			Detail: "enumerate exploitable vulnerabilities; categorise with STRIDE"},
		{Name: "Threat Rating", Kind: Process,
			Detail: "prioritise and quantify threats with DREAD"},
		{Name: "Determine countermeasure", Kind: Process,
			Detail: "define a countermeasure per threat by prioritised risk"},
		{Name: "Device security model", Kind: Artifact,
			Detail: "bridge between modelling and testing; expressible as access control policies"},
		{Name: "Hardware & software implementation", Kind: Process,
			Detail: "developers implement to the security guidance"},
		{Name: "Secure application testing", Kind: Process,
			Detail: "verify the implementation complies with the security model"},
		{Name: "Compliance", Kind: Gate,
			Detail: "security assurance for regulators and OEM customers"},
		{Name: "Deployment", Kind: Process,
			Detail: "device ships; life-cycle continues to decommission"},
	}
}

// CostModel parameterises stage durations. All fields must be positive for
// the stages a path uses.
type CostModel struct {
	// ThreatAnalysis: re-running threat modelling for the new threat.
	ThreatAnalysis time.Duration
	// Redesign: hardware/software redesign under the guideline approach.
	Redesign time.Duration
	// Reimplementation: implementing the redesigned countermeasure.
	Reimplementation time.Duration
	// RegressionTest: full product regression and certification testing.
	RegressionTest time.Duration
	// RecallOrUpdate: physically recalling units or staging a full firmware
	// image rollout.
	RecallOrUpdate time.Duration

	// PolicyDerivation: deriving new policy rules from the updated model.
	PolicyDerivation time.Duration
	// PolicyValidation: testing/verifying the policy against the device
	// model (no product redesign involved).
	PolicyValidation time.Duration
	// PolicySigning: signing and packaging the policy bundle.
	PolicySigning time.Duration
	// PolicyDistribution: distributing the bundle over the air.
	PolicyDistribution time.Duration
}

// DefaultCostModel gives industry-scale defaults: a redesign cycle measured
// in months (automotive change management, regression, recall logistics)
// versus a policy cycle measured in days.
func DefaultCostModel() CostModel {
	return CostModel{
		ThreatAnalysis:   10 * Day,
		Redesign:         45 * Day,
		Reimplementation: 60 * Day,
		RegressionTest:   30 * Day,
		RecallOrUpdate:   90 * Day,

		PolicyDerivation:   2 * Day,
		PolicyValidation:   3 * Day,
		PolicySigning:      Day / 2,
		PolicyDistribution: 2 * Day,
	}
}

// Validate rejects non-positive durations.
func (m CostModel) Validate() error {
	fields := []struct {
		name string
		d    time.Duration
	}{
		{"ThreatAnalysis", m.ThreatAnalysis},
		{"Redesign", m.Redesign},
		{"Reimplementation", m.Reimplementation},
		{"RegressionTest", m.RegressionTest},
		{"RecallOrUpdate", m.RecallOrUpdate},
		{"PolicyDerivation", m.PolicyDerivation},
		{"PolicyValidation", m.PolicyValidation},
		{"PolicySigning", m.PolicySigning},
		{"PolicyDistribution", m.PolicyDistribution},
	}
	for _, f := range fields {
		if f.d <= 0 {
			return fmt.Errorf("lifecycle: %s must be positive, got %v", f.name, f.d)
		}
	}
	return nil
}

// PathKind selects the post-deployment response strategy.
type PathKind uint8

// Response paths.
const (
	// GuidelinePath: the traditional approach — redesign, reimplement,
	// regression-test, recall/rollout (§V-A.1).
	GuidelinePath PathKind = iota + 1
	// PolicyPath: the paper's approach — derive, validate, sign and
	// distribute a policy update (§V-A.2).
	PolicyPath
)

// String returns the path name.
func (p PathKind) String() string {
	switch p {
	case GuidelinePath:
		return "guideline"
	case PolicyPath:
		return "policy"
	default:
		return "invalid"
	}
}

// StageCost is one step of a response with its duration.
type StageCost struct {
	Name     string
	Duration time.Duration
}

// Response is the full post-deployment reaction to a new threat.
type Response struct {
	// Path identifies the strategy.
	Path PathKind
	// Steps in execution order.
	Steps []StageCost
	// Total is the end-to-end duration (sum of steps; stages are serial,
	// which favours neither path).
	Total time.Duration
}

// ErrUnknownPath is returned for invalid path kinds.
var ErrUnknownPath = errors.New("lifecycle: unknown response path")

// Respond computes the response of the chosen path under a cost model.
func Respond(path PathKind, m CostModel) (Response, error) {
	if err := m.Validate(); err != nil {
		return Response{}, err
	}
	var steps []StageCost
	switch path {
	case GuidelinePath:
		steps = []StageCost{
			{"threat analysis update", m.ThreatAnalysis},
			{"hardware/software redesign", m.Redesign},
			{"reimplementation", m.Reimplementation},
			{"regression testing & certification", m.RegressionTest},
			{"product recall / full image rollout", m.RecallOrUpdate},
		}
	case PolicyPath:
		steps = []StageCost{
			{"threat analysis update", m.ThreatAnalysis},
			{"policy derivation", m.PolicyDerivation},
			{"policy validation", m.PolicyValidation},
			{"bundle signing", m.PolicySigning},
			{"policy distribution", m.PolicyDistribution},
		}
	default:
		return Response{}, fmt.Errorf("%w: %d", ErrUnknownPath, path)
	}
	var total time.Duration
	for _, s := range steps {
		total += s.Duration
	}
	return Response{Path: path, Steps: steps, Total: total}, nil
}

// Comparison quantifies the §V-A.3 claim for one cost model.
type Comparison struct {
	Guideline Response
	Policy    Response
	// Speedup is guideline total over policy total.
	Speedup float64
	// ExposureSavings is the exposure-window reduction.
	ExposureSavings time.Duration
}

// Compare computes both paths and their ratio.
func Compare(m CostModel) (Comparison, error) {
	g, err := Respond(GuidelinePath, m)
	if err != nil {
		return Comparison{}, err
	}
	p, err := Respond(PolicyPath, m)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Guideline:       g,
		Policy:          p,
		Speedup:         float64(g.Total) / float64(p.Total),
		ExposureSavings: g.Total - p.Total,
	}, nil
}

// Exposure estimates the expected number of successful exploitations while
// a mitigation is pending, given an attack rate (attempts per day) and a
// per-attempt success probability. It is a deterministic expectation, not a
// sample.
func Exposure(window time.Duration, attemptsPerDay, successProb float64) float64 {
	if attemptsPerDay < 0 || successProb < 0 {
		return 0
	}
	days := float64(window) / float64(Day)
	return days * attemptsPerDay * successProb
}

// String renders the response as a step list.
func (r Response) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s path (total %s):\n", r.Path, FormatDays(r.Total))
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  %-38s %s\n", s.Name, FormatDays(s.Duration))
	}
	return b.String()
}

// FormatDays renders a duration in days with one decimal.
func FormatDays(d time.Duration) string {
	return fmt.Sprintf("%.1fd", float64(d)/float64(Day))
}
