package lifecycle

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestPipelineShape(t *testing.T) {
	steps := Pipeline()
	if len(steps) != 11 {
		t.Fatalf("pipeline has %d steps", len(steps))
	}
	// The six threat-modelling stages come first, in Fig. 1 order.
	want := []string{
		"Risk assessment", "Identify Assets", "Entry Points",
		"Threat Identification", "Threat Rating", "Determine countermeasure",
	}
	for i, w := range want {
		if steps[i].Name != w {
			t.Errorf("step %d = %q, want %q", i, steps[i].Name, w)
		}
		if steps[i].Kind != Process {
			t.Errorf("step %q kind = %v", w, steps[i].Kind)
		}
	}
	// The security model artifact bridges modelling and implementation.
	if steps[6].Name != "Device security model" || steps[6].Kind != Artifact {
		t.Errorf("bridge step = %+v", steps[6])
	}
	var gates int
	for _, s := range steps {
		if s.Kind == Gate {
			gates++
		}
		if s.Detail == "" {
			t.Errorf("step %q has no detail", s.Name)
		}
	}
	if gates != 1 {
		t.Errorf("gates = %d, want 1 (compliance)", gates)
	}
}

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelValidation(t *testing.T) {
	m := DefaultCostModel()
	m.Redesign = 0
	if err := m.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	m = DefaultCostModel()
	m.PolicySigning = -time.Hour
	if err := m.Validate(); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestRespondPaths(t *testing.T) {
	m := DefaultCostModel()
	g, err := Respond(GuidelinePath, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Steps) != 5 {
		t.Errorf("guideline steps = %d", len(g.Steps))
	}
	wantG := m.ThreatAnalysis + m.Redesign + m.Reimplementation + m.RegressionTest + m.RecallOrUpdate
	if g.Total != wantG {
		t.Errorf("guideline total = %v, want %v", g.Total, wantG)
	}
	p, err := Respond(PolicyPath, m)
	if err != nil {
		t.Fatal(err)
	}
	wantP := m.ThreatAnalysis + m.PolicyDerivation + m.PolicyValidation + m.PolicySigning + m.PolicyDistribution
	if p.Total != wantP {
		t.Errorf("policy total = %v, want %v", p.Total, wantP)
	}
	if _, err := Respond(PathKind(9), m); !errors.Is(err, ErrUnknownPath) {
		t.Errorf("bad path error = %v", err)
	}
	if _, err := Respond(GuidelinePath, CostModel{}); err == nil {
		t.Error("invalid cost model accepted")
	}
}

// TestPolicyPathIsMuchFaster is the §V-A.3 claim under defaults: the policy
// update cycle is at least an order of magnitude shorter.
func TestPolicyPathIsMuchFaster(t *testing.T) {
	c, err := Compare(DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup < 10 {
		t.Errorf("speedup = %.1fx, want >= 10x under default costs", c.Speedup)
	}
	if c.ExposureSavings != c.Guideline.Total-c.Policy.Total {
		t.Error("exposure savings inconsistent")
	}
}

// TestClaimHoldsAcrossParameterSweep checks the claim is not an artifact of
// one parameterisation: even with redesign costs shrunk 10x and policy
// costs grown 3x, the policy path stays faster.
func TestClaimHoldsAcrossParameterSweep(t *testing.T) {
	m := DefaultCostModel()
	m.Redesign /= 10
	m.Reimplementation /= 10
	m.RegressionTest /= 10
	m.RecallOrUpdate /= 10
	m.PolicyDerivation *= 2
	m.PolicyValidation *= 2
	m.PolicySigning *= 2
	m.PolicyDistribution *= 2
	c, err := Compare(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup <= 1 {
		t.Errorf("claim inverted under adversarial parameters: %.2fx", c.Speedup)
	}
}

func TestExposure(t *testing.T) {
	if got := Exposure(10*Day, 2, 0.5); got != 10 {
		t.Errorf("Exposure = %v, want 10", got)
	}
	if got := Exposure(Day/2, 4, 1); got != 2 {
		t.Errorf("Exposure = %v, want 2", got)
	}
	if Exposure(Day, -1, 0.5) != 0 || Exposure(Day, 1, -0.5) != 0 {
		t.Error("negative inputs must yield 0")
	}
}

func TestResponseString(t *testing.T) {
	r, err := Respond(PolicyPath, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "policy path") || !strings.Contains(s, "bundle signing") {
		t.Errorf("String = %q", s)
	}
}

func TestFormatDays(t *testing.T) {
	if got := FormatDays(36 * time.Hour); got != "1.5d" {
		t.Errorf("FormatDays = %q", got)
	}
}
