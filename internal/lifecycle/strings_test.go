package lifecycle

import "testing"

func TestStepKindStrings(t *testing.T) {
	tests := []struct {
		kind StepKind
		want string
	}{
		{Process, "process"},
		{Artifact, "artifact"},
		{Gate, "gate"},
		{StepKind(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("StepKind(%d) = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestPathKindStrings(t *testing.T) {
	tests := []struct {
		path PathKind
		want string
	}{
		{GuidelinePath, "guideline"},
		{PolicyPath, "policy"},
		{PathKind(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.path.String(); got != tt.want {
			t.Errorf("PathKind(%d) = %q, want %q", tt.path, got, tt.want)
		}
	}
}

func TestCompareErrorPropagation(t *testing.T) {
	if _, err := Compare(CostModel{}); err == nil {
		t.Error("Compare accepted an invalid cost model")
	}
	// A model valid for one path but broken for the other still fails.
	m := DefaultCostModel()
	m.PolicyDistribution = 0
	if _, err := Compare(m); err == nil {
		t.Error("Compare accepted a model with a zero policy stage")
	}
}
