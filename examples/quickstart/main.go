// Quickstart: model a single threat, derive a least-privilege policy,
// enforce it with a hardware policy engine on a two-node bus, and watch the
// spoofing attack that motivated it get blocked.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/dread"
	"repro/internal/hpe"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stride"
	"repro/internal/threatmodel"
)

func main() {
	// 1. Describe the use case: one actuator reading command messages from
	// one controller (the legitimate communication matrix).
	uc := threatmodel.UseCase{
		Name:  "quickstart",
		Modes: []policy.Mode{"Run"},
		Assets: []threatmodel.Asset{
			{Name: "valve", Node: "Valve", Critical: true, Description: "process valve actuator"},
			{Name: "plc", Node: "PLC", Description: "programmable logic controller"},
		},
		EntryPoints: []threatmodel.EntryPoint{
			{Name: "fieldbus", Exposes: []string{"valve"}, Description: "shared field bus"},
		},
		Comm: []threatmodel.CommRequirement{
			{Subject: "PLC", Action: policy.ActWrite, IDs: policy.SingleID(0x42),
				Rationale: "valve command tx"},
			{Subject: "Valve", Action: policy.ActRead, IDs: policy.SingleID(0x42),
				Rationale: "valve command rx"},
		},
	}

	// 2. Identify the threat and let the pipeline classify (STRIDE), score
	// (DREAD rubric) and derive the policy action.
	threat := threatmodel.Threat{
		ID:          "VALVE-1",
		Description: "Spoofed command fully opens the valve",
		Asset:       "valve",
		EntryPoints: []string{"fieldbus"},
		Modes:       []policy.Mode{"Run"},
		Effects:     stride.Effects{ForgesIdentity: true, ModifiesData: true, DisruptsService: true},
		Assessment: dread.Assessment{
			Damage:          dread.DamageSafety,
			Reproducibility: dread.ReproReliable,
			Exploitability:  dread.ExploitSkilled,
			AffectedUsers:   dread.AffectedOccupants,
			Discoverability: dread.DiscoverKnown,
		},
		Vector: threatmodel.VectorInbound,
	}

	model, err := core.BuildModel(uc, []threatmodel.Threat{threat}, "quickstart", 1)
	if err != nil {
		log.Fatal(err)
	}
	rt := model.Analysis.Threats[0]
	fmt.Printf("threat %s: STRIDE=%s DREAD=%s rating=%s policy=%s\n",
		rt.ID, rt.Stride, rt.Score, rt.Rating, rt.Policy)
	fmt.Println("\nderived policy:")
	fmt.Print(model.Policies.String())

	// 3. Build the bus, compile the policy, deploy engines.
	sched := &sim.Scheduler{}
	bus := canbus.New(sched, canbus.Config{})
	plc := bus.MustAttach("PLC")
	valve := bus.MustAttach("Valve")
	rogue := bus.MustAttach("Rogue") // attacker-introduced node, no HPE

	valveOpen := false
	valve.Controller().SetHandler(func(f canbus.Frame) {
		if f.ID == 0x42 && len(f.Data) > 0 {
			valveOpen = f.Data[0] == 0xFF
		}
	})

	compiled, err := policy.Compile(model.Policies, policy.CompileOptions{
		Subjects: []string{"PLC", "Valve"},
		Modes:    []policy.Mode{"Run"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hpe.Deploy(bus, compiled, hpe.FixedMode("Run"), hpe.DefaultCycleModel(), "PLC", "Valve"); err != nil {
		log.Fatal(err)
	}

	// 4. Legitimate command flows...
	must(plc.Send(canbus.MustDataFrame(0x42, []byte{0x10})))
	sched.Run()
	fmt.Printf("\nafter legitimate command: valveOpen=%v (want false, 0x10 = 6%% open)\n", valveOpen)

	// ...the spoofed full-open from the rogue node does not: the valve's
	// approved reading list admits 0x42, but the rogue can only reach the
	// valve with IDs the valve was never approved to read — try the
	// maintenance override ID 0x99 an attacker would probe.
	must(rogue.Send(canbus.MustDataFrame(0x99, []byte{0xFF})))
	sched.Run()
	fmt.Printf("after rogue 0x99 probe:   valveOpen=%v, valve read-blocked=%d\n",
		valveOpen, valve.Stats().RxBlocked)

	// An *inside* attack — the PLC compromised and spamming a diagnostic
	// flood ID — is stopped at the PLC's own write filter, which its
	// firmware cannot bypass.
	plc.Controller().CompromiseFilters()
	must(plc.Send(canbus.MustDataFrame(0x99, []byte{0xFF})))
	sched.Run()
	fmt.Printf("after compromised PLC tx: plc write-blocked=%d\n", plc.Stats().TxBlocked)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
