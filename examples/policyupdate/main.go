// Policy update: the §V-A.2 walkthrough. A vehicle ships with policy v1
// that over-permissively allows a legacy infotainment hook; after
// deployment a new threat exploiting it is discovered. The OEM counters it
// with a *signed policy update* — no firmware change, no recall — and the
// example quantifies the response-cycle difference against the guideline
// approach (Fig. 1).
//
// Run with: go run ./examples/policyupdate
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/policy"
	"repro/internal/report"
)

// entropy is a deterministic key source so the example output is stable.
type entropy byte

func (e entropy) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(e) ^ byte(i*31)
	}
	return len(p), nil
}

func main() {
	oem, err := core.NewOEM(entropy(3))
	if err != nil {
		log.Fatal(err)
	}

	// v1 policy: correct analysis plus one over-permissive legacy rule.
	model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 1)
	if err != nil {
		log.Fatal(err)
	}
	v1 := *model.Policies
	v1.Rules = append(v1.Rules,
		policy.Rule{Name: "legacy infotainment hook", Subject: car.NodeInfotainment,
			Effect: policy.Allow, Action: policy.ActWrite, IDs: policy.SingleID(car.IDModemControl)},
		policy.Rule{Name: "legacy modem listener", Subject: car.NodeTelematics,
			Effect: policy.Allow, Action: policy.ActRead, IDs: policy.SingleID(car.IDModemControl)},
	)

	fmt.Println("== Deployment with policy v1 ==")
	c := car.MustNew(car.Config{})
	dev, err := core.Provision(c.Bus(), c, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		log.Fatal(err)
	}
	b1, err := oem.Issue(&v1)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.ApplyUpdate(b1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed policy version %d (%d rules)\n", dev.PolicyVersion(), len(v1.Rules))

	fmt.Println("\n== New threat discovered: CONN-3 modem kill via the legacy hook ==")
	succeeded := replayModemKill(c)
	fmt.Printf("attack outcome under v1: succeeded=%v (modem enabled=%v)\n",
		succeeded, c.State().ModemEnabled)

	// The OEM response: re-run the modelling, drop the legacy rule, bump
	// the version, sign and distribute.
	fmt.Println("\n== OEM issues signed policy v2 ==")
	model2, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 2)
	if err != nil {
		log.Fatal(err)
	}
	b2, err := oem.Issue(model2.Policies)
	if err != nil {
		log.Fatal(err)
	}

	// A tampered or replayed bundle is rejected by the device.
	forged := *b2
	forged.Source += "\nallow write 0x010 at Infotainment"
	if err := dev.ApplyUpdate(&forged); err != nil {
		fmt.Println("tampered bundle rejected:", err)
	}
	if err := dev.ApplyUpdate(b1); err != nil {
		fmt.Println("replayed v1 bundle rejected:", err)
	}

	if err := dev.ApplyUpdate(b2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot-swapped to policy version %d; engines refreshed atomically\n", dev.PolicyVersion())

	// Fresh attack attempt on the updated vehicle.
	c2 := car.MustNew(car.Config{})
	dev2, err := core.Provision(c2.Bus(), c2, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev2.ApplyUpdate(b2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack outcome under v2: succeeded=%v (modem enabled=%v)\n",
		replayModemKill(c2), c2.State().ModemEnabled)

	// Quantify the response-cycle claim (§V-A.3).
	fmt.Println("\n== Response-cycle comparison (Fig. 1 economics) ==")
	cmp, err := lifecycle.Compare(lifecycle.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Comparison(cmp, 2, 0.25))
}

// replayModemKill executes the CONN-3 scenario mechanics directly on c.
func replayModemKill(c *car.Car) bool {
	sc, ok := attack.ScenarioFor(car.ThreatConnModemOffEmg)
	if !ok {
		log.Fatal("scenario missing")
	}
	node, _ := c.Node(sc.Attacker)
	node.Controller().CompromiseFilters()
	c.SetMode(sc.Mode)
	for _, inj := range sc.Injections {
		f, err := canbus.NewDataFrame(inj.ID, inj.Data)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < inj.Repeat; i++ {
			_ = node.Send(f)
		}
	}
	c.Scheduler().Run()
	return sc.Succeeded(c.State())
}
