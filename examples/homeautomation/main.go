// Home automation: a second application domain, modelled after the Tan et
// al. scenario the paper extends (§III). Shows the approach is not
// car-specific: the same pipeline (STRIDE -> DREAD -> policy -> compiled
// tables -> HPE) applied to a smart-home hub, lock, camera and thermostat
// on a shared device bus.
//
// Run with: go run ./examples/homeautomation
package main

import (
	"fmt"
	"log"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/dread"
	"repro/internal/hpe"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stride"
	"repro/internal/threatmodel"
)

// Message IDs of the home bus.
const (
	idLockCmd    = 0x20 // hub -> lock
	idLockState  = 0x21 // lock -> hub
	idCamStream  = 0x30 // camera -> hub
	idThermostat = 0x40 // thermostat -> hub
	idFirmware   = 0x70 // hub -> all, Maintenance mode only
)

func useCase() threatmodel.UseCase {
	return threatmodel.UseCase{
		Name:  "home-automation",
		Modes: []policy.Mode{"Home", "Away", "Maintenance"},
		Assets: []threatmodel.Asset{
			{Name: "front-lock", Node: "Lock", Critical: true, Description: "smart door lock"},
			{Name: "camera", Node: "Camera", Critical: true, Description: "indoor camera"},
			{Name: "thermostat", Node: "Thermostat", Description: "heating control"},
			{Name: "hub", Node: "Hub", Critical: true, Description: "automation hub with cloud uplink"},
		},
		EntryPoints: []threatmodel.EntryPoint{
			{Name: "cloud", Exposes: []string{"hub", "front-lock"}, Description: "cloud uplink"},
			{Name: "local-bus", Exposes: []string{"front-lock", "camera", "thermostat"},
				Description: "shared device bus"},
		},
		Comm: []threatmodel.CommRequirement{
			{Subject: "Hub", Action: policy.ActWrite, IDs: policy.SingleID(idLockCmd),
				Modes: []policy.Mode{"Home", "Away"}, Rationale: "lock command tx"},
			{Subject: "Lock", Action: policy.ActRead, IDs: policy.SingleID(idLockCmd),
				Modes: []policy.Mode{"Home", "Away"}, Rationale: "lock command rx"},
			{Subject: "Lock", Action: policy.ActWrite, IDs: policy.SingleID(idLockState),
				Rationale: "lock state tx"},
			{Subject: "Hub", Action: policy.ActRead, IDs: policy.SingleID(idLockState),
				Rationale: "lock state rx"},
			{Subject: "Camera", Action: policy.ActWrite, IDs: policy.SingleID(idCamStream),
				Rationale: "camera stream tx"},
			{Subject: "Hub", Action: policy.ActRead, IDs: policy.SingleID(idCamStream),
				Rationale: "camera stream rx"},
			{Subject: "Thermostat", Action: policy.ActWrite, IDs: policy.SingleID(idThermostat),
				Rationale: "thermostat tx"},
			{Subject: "Hub", Action: policy.ActRead, IDs: policy.SingleID(idThermostat),
				Rationale: "thermostat rx"},
			{Subject: "Hub", Action: policy.ActWrite, IDs: policy.SingleID(idFirmware),
				Modes: []policy.Mode{"Maintenance"}, Rationale: "firmware tx"},
			{Subject: "Lock", Action: policy.ActRead, IDs: policy.SingleID(idFirmware),
				Modes: []policy.Mode{"Maintenance"}, Rationale: "firmware rx lock"},
			{Subject: "Camera", Action: policy.ActRead, IDs: policy.SingleID(idFirmware),
				Modes: []policy.Mode{"Maintenance"}, Rationale: "firmware rx camera"},
		},
	}
}

func threats() []threatmodel.Threat {
	return []threatmodel.Threat{
		{
			ID: "LOCK-1", Description: "Spoofed unlock command while owners are away",
			Asset: "front-lock", EntryPoints: []string{"local-bus"},
			Modes:   []policy.Mode{"Away"},
			Effects: stride.Effects{ForgesIdentity: true, ModifiesData: true, EscalatesPrivilege: true},
			Assessment: dread.Assessment{
				Damage:          dread.DamageControl,
				Reproducibility: dread.ReproReliable,
				Exploitability:  dread.ExploitSkilled,
				AffectedUsers:   dread.AffectedOwner,
				Discoverability: dread.DiscoverKnown,
			},
			Vector: threatmodel.VectorInbound,
		},
		{
			ID: "CAM-1", Description: "Compromised thermostat exfiltrates camera frames",
			Asset: "camera", EntryPoints: []string{"local-bus"},
			Modes:   []policy.Mode{"Home", "Away"},
			Effects: stride.Effects{ModifiesData: true, DisclosesInfo: true},
			Assessment: dread.Assessment{
				Damage:          dread.DamageServiceLoss,
				Reproducibility: dread.ReproAlways,
				Exploitability:  dread.ExploitToolkit,
				AffectedUsers:   dread.AffectedOwner,
				Discoverability: dread.DiscoverResearch,
			},
			Vector: threatmodel.VectorOutbound,
		},
		{
			ID: "HUB-1", Description: "Rogue device pushes firmware outside maintenance",
			Asset: "hub", EntryPoints: []string{"cloud", "local-bus"},
			Modes:   []policy.Mode{"Home", "Away"},
			Effects: stride.Effects{ForgesIdentity: true, ModifiesData: true, EscalatesPrivilege: true},
			Assessment: dread.Assessment{
				Damage:          dread.DamageSafety,
				Reproducibility: dread.ReproSituational,
				Exploitability:  dread.ExploitSpecialist,
				AffectedUsers:   dread.AffectedFleet,
				Discoverability: dread.DiscoverObscure,
			},
			Vector: threatmodel.VectorInbound,
		},
	}
}

func main() {
	model, err := core.BuildModel(useCase(), threats(), "home-v1", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Home automation threat model ==")
	fmt.Print(report.TableI(model.Analysis, []string{"HUB-1", "LOCK-1", "CAM-1"}))

	// Build the home bus and deploy the compiled policy.
	sched := &sim.Scheduler{}
	bus := canbus.New(sched, canbus.Config{})
	nodes := []string{"Hub", "Lock", "Camera", "Thermostat"}
	for _, n := range nodes {
		bus.MustAttach(n)
	}
	lockOpen := false
	lock, _ := bus.Node("Lock")
	lock.Controller().SetHandler(func(f canbus.Frame) {
		if f.ID == idLockCmd && len(f.Data) > 0 {
			lockOpen = f.Data[0] == 0x02
		}
	})

	compiled, err := policy.Compile(model.Policies, policy.CompileOptions{
		Subjects: nodes,
		Modes:    []policy.Mode{"Home", "Away", "Maintenance"},
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := &switchableMode{mode: "Away"}
	engines, err := hpe.Deploy(bus, compiled, mode, hpe.DefaultCycleModel(), nodes...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Attacks in Away mode ==")

	// LOCK-1: compromised thermostat spoofs the unlock command.
	thermostat, _ := bus.Node("Thermostat")
	thermostat.Controller().CompromiseFilters()
	_ = thermostat.Send(canbus.MustDataFrame(idLockCmd, []byte{0x02}))
	sched.Run()
	fmt.Printf("LOCK-1 spoofed unlock: lockOpen=%v, thermostat write-blocked=%d\n",
		lockOpen, engines["Thermostat"].Stats().WritesBlocked)

	// CAM-1: the thermostat also tries to impersonate the camera stream.
	_ = thermostat.Send(canbus.MustDataFrame(idCamStream, []byte{0xEE}))
	sched.Run()
	fmt.Printf("CAM-1 stream forgery:  thermostat write-blocked=%d\n",
		engines["Thermostat"].Stats().WritesBlocked)

	// HUB-1: a rogue device pushes firmware in Away mode; lock/camera read
	// filters only admit idFirmware in Maintenance.
	rogue := bus.MustAttach("RogueDongle")
	_ = rogue.Send(canbus.MustDataFrame(idFirmware, []byte{0xBA, 0xD0}))
	sched.Run()
	fmt.Printf("HUB-1 rogue firmware:  lock read-blocked=%d camera read-blocked=%d\n",
		engines["Lock"].Stats().ReadsBlocked, engines["Camera"].Stats().ReadsBlocked)

	// Legitimate operation still works, including the mode-gated firmware
	// path once the owner enters Maintenance.
	fmt.Println("\n== Legitimate flows ==")
	hub, _ := bus.Node("Hub")
	_ = hub.Send(canbus.MustDataFrame(idLockCmd, []byte{0x02}))
	sched.Run()
	fmt.Printf("hub unlock in Away:        lockOpen=%v\n", lockOpen)

	mode.set("Maintenance")
	before := engines["Lock"].Stats().ReadsGranted
	_ = hub.Send(canbus.MustDataFrame(idFirmware, []byte{0x01}))
	sched.Run()
	fmt.Printf("hub firmware in Maintenance: lock reads-granted +%d\n",
		engines["Lock"].Stats().ReadsGranted-before)
}

// switchableMode is a mutable hpe.ModeSource.
type switchableMode struct{ mode policy.Mode }

func (m *switchableMode) Mode() policy.Mode  { return m.mode }
func (m *switchableMode) set(mo policy.Mode) { m.mode = mo }
