// Connected car: the paper's full case study end to end. Reproduces
// Table I, runs all sixteen attack scenarios under three enforcement
// regimes, and demonstrates the §V-B.2 contrast: a kernel compromise
// defeats the software MAC layer while the hardware policy engine keeps
// filtering.
//
// Run with: go run ./examples/connectedcar
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/report"
)

func main() {
	// Phase 1: threat modelling (Fig. 1) and Table I.
	model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Table I: threat model of the connected car ==")
	fmt.Print(report.TableI(model.Analysis, car.TableRowOrder))

	// Phase 2: the attack matrix across enforcement regimes.
	fmt.Println("\n== Attack matrix (16 Table I scenarios x 3 regimes) ==")
	h, err := attack.NewHarness()
	if err != nil {
		log.Fatal(err)
	}
	results, err := h.RunAll(attack.Scenarios(),
		attack.EnforceNone, attack.EnforceSoftware, attack.EnforceHPE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.AttackResults(results))

	blocked := 0
	for _, r := range results {
		if r.Enforcement == attack.EnforceHPE && !r.Succeeded {
			blocked++
		}
	}
	fmt.Printf("\nHPE blocked %d/16 attacks with zero false positives.\n", blocked)

	// Phase 3: the software/hardware enforcement contrast (§V-B.2).
	fmt.Println("\n== Kernel compromise: software MAC falls, HPE does not ==")
	srv := mac.NewServer()
	module, err := core.DeriveMACModule(model.Analysis, "car-base", 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Load(module); err != nil {
		log.Fatal(err)
	}

	check := func(label string) {
		d := srv.Check(
			core.MACContext(car.NodeInfotainment),
			core.MessageContext(car.IDTrackingReport),
			core.MACClassCAN, core.MACPermWrite)
		fmt.Printf("  %-28s software MAC verdict: allowed=%v bypassed=%v\n",
			label, d.Allowed, d.Bypassed)
	}
	check("healthy kernel:")
	srv.CompromiseKernel()
	check("compromised kernel:")

	// The same flow at the hardware layer, with the infotainment firmware
	// (controller) also compromised: the HPE still blocks.
	sc, _ := attack.ScenarioFor(car.ThreatConnPrivacy)
	r, err := h.Run(sc, attack.EnforceHPE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  compromised firmware:        HPE verdict: attack succeeded=%v (write-blocked=%d)\n",
		r.Succeeded, r.WriteBlocked)

	fmt.Println("\nConclusion: the software layer is only as strong as the kernel " +
		"beneath it; the transparent hardware engine filters regardless (Fig. 4).")
}
