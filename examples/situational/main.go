// Situational policies: the paper's §V-A extension ("more complex policies
// such as behavioural or situational based policies may be derived") made
// concrete. Plain identifier filtering cannot stop a *legitimate* writer
// whose credentials are abused; situational and rate rules layered on the
// HPE can.
//
// Two demonstrations on the connected car:
//  1. stolen remote-unlock credentials used while the car is in motion
//     (DOOR-1's nastier cousin) — blocked by a situational rule;
//  2. a compromised sensor flooding its own legitimate broadcast to starve
//     the bus — capped by a rate rule.
//
// Run with: go run ./examples/situational
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/behaviour"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/hpe"
	"repro/internal/policy"
	"repro/internal/threatmodel"
)

func main() {
	c := car.MustNew(car.Config{})

	// Identifier layer: compile and deploy the Table I policy as usual.
	analysis, err := car.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	set, err := threatmodel.DerivePolicies(analysis, "table-i", 1)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := policy.Compile(set, policy.CompileOptions{
		Subjects: car.AllNodes, Modes: car.AllModes,
	})
	if err != nil {
		log.Fatal(err)
	}
	engines, err := hpe.Deploy(c.Bus(), compiled, c, hpe.DefaultCycleModel(), car.AllNodes...)
	if err != nil {
		log.Fatal(err)
	}

	// Situational layer on the door locks: no unlock while in motion.
	doors, _ := c.Node(car.NodeDoorLocks)
	doorGuard := behaviour.New(engines[car.NodeDoorLocks], c.Scheduler().Now)
	must(doorGuard.AddRule(&behaviour.SituationalDeny{
		Label: "no-unlock-in-motion",
		When: behaviour.SituationFunc{Name: "vehicle in motion", Fn: func() bool {
			return c.State().ActualSpeed > 0
		}},
		Direction: canbus.Read,
		IDs:       policy.SingleID(car.IDDoorCommand),
	}))
	doors.SetInlineFilter(doorGuard)

	// Behavioural layer on the sensors: broadcast budget.
	sensors, _ := c.Node(car.NodeSensors)
	sensorGuard := behaviour.New(engines[car.NodeSensors], c.Scheduler().Now)
	must(sensorGuard.AddRule(&behaviour.RateLimit{
		Label:        "speed-broadcast-budget",
		Direction:    canbus.Write,
		IDs:          policy.SingleID(car.IDSensorSpeed),
		MaxPerWindow: 20,
		Window:       100 * time.Millisecond,
	}))
	sensors.SetInlineFilter(sensorGuard)

	fmt.Println("== 1. Credential abuse: remote unlock while driving ==")
	must(c.LockDoors())
	c.Scheduler().Run()
	c.StartTraffic(time.Millisecond, 5*time.Millisecond, 80) // driving at 80
	c.Scheduler().Run()
	must(c.UnlockDoors()) // legitimate credential, abused
	c.Scheduler().Run()
	fmt.Printf("  in motion (speed=%d): doors locked=%v, situational blocks=%d\n",
		c.State().ActualSpeed, c.State().DoorsLocked,
		doorGuard.Stats().RuleBlocked["no-unlock-in-motion"])

	// Stop the car; the same credential now works (no false positive).
	c.StartTraffic(time.Millisecond, 5*time.Millisecond, 0)
	c.Scheduler().Run()
	must(c.UnlockDoors())
	c.Scheduler().Run()
	fmt.Printf("  parked (speed=%d):     doors locked=%v\n",
		c.State().ActualSpeed, c.State().DoorsLocked)

	fmt.Println("\n== 2. Broadcast flood from a compromised sensor ==")
	sensors.Controller().CompromiseFilters() // firmware gone rogue
	f := canbus.MustDataFrame(car.IDSensorSpeed, []byte{0x00, 0x50})
	base := c.Scheduler().Now()
	for i := 0; i < 500; i++ {
		at := base + time.Duration(i)*200*time.Microsecond // 5 kHz flood
		c.Scheduler().At(at, func(time.Duration) { _ = sensors.Send(f.Clone()) })
	}
	c.Scheduler().Run()
	st := sensors.Stats()
	fmt.Printf("  flood: %d attempted, %d transmitted, %d rate-blocked\n",
		st.TxRequested, st.TxCompleted, st.TxBlocked)
	fmt.Printf("  bus utilisation: %.1f%%\n", c.Bus().Utilisation()*100)

	fmt.Println("\nBoth attacks use only identifiers their node is approved for —")
	fmt.Println("invisible to pure ID filtering, stopped by the situational layer.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
