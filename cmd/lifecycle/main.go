// Command lifecycle prints the Fig. 1 secure product development life-cycle
// and quantifies the paper's §V-A.3 claim: the post-deployment response to
// a newly discovered threat under the guideline approach (redesign, recall)
// versus the policy approach (signed policy update).
//
// Usage:
//
//	lifecycle [-attempts-per-day F] [-success-prob P] [-redesign-days N] [-recall-days N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/report"
)

func main() {
	attempts := flag.Float64("attempts-per-day", 2, "attack attempts per day during the exposure window")
	prob := flag.Float64("success-prob", 0.25, "per-attempt success probability")
	redesignDays := flag.Float64("redesign-days", 45, "redesign stage duration in days (guideline path)")
	recallDays := flag.Float64("recall-days", 90, "recall/rollout stage duration in days (guideline path)")
	distDays := flag.Float64("policy-dist-days", 2, "policy distribution duration in days (policy path)")
	flag.Parse()

	if err := run(*attempts, *prob, *redesignDays, *recallDays, *distDays); err != nil {
		fmt.Fprintln(os.Stderr, "lifecycle:", err)
		os.Exit(1)
	}
}

func run(attempts, prob, redesignDays, recallDays, distDays float64) error {
	fmt.Print(report.Lifecycle(lifecycle.Pipeline()))
	fmt.Println()

	m := lifecycle.DefaultCostModel()
	m.Redesign = time.Duration(redesignDays * float64(lifecycle.Day))
	m.RecallOrUpdate = time.Duration(recallDays * float64(lifecycle.Day))
	m.PolicyDistribution = time.Duration(distDays * float64(lifecycle.Day))
	cmp, err := lifecycle.Compare(m)
	if err != nil {
		return err
	}
	fmt.Print(report.Comparison(cmp, attempts, prob))

	// Sensitivity sweep over the recall duration: the ratio stays large
	// across the plausible range, which is the substance of the claim.
	fmt.Println("\nSensitivity: speed-up vs recall/rollout duration")
	for _, days := range []float64{15, 30, 60, 90, 180} {
		s := m
		s.RecallOrUpdate = time.Duration(days * float64(lifecycle.Day))
		c, err := lifecycle.Compare(s)
		if err != nil {
			return err
		}
		fmt.Printf("  recall %5.0fd -> guideline %7s, policy %6s, speed-up %5.1fx\n",
			days, lifecycle.FormatDays(c.Guideline.Total),
			lifecycle.FormatDays(c.Policy.Total), c.Speedup)
	}
	return nil
}
