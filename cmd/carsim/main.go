// Command carsim runs the connected-car simulation: it can print the Fig. 2
// topology and Fig. 3/4 architecture views, replay the sixteen Table I
// attack scenarios under selectable enforcement regimes, trace bus
// activity, and sweep a whole fleet of independent vehicle simulations
// across a bounded worker pool.
//
// Usage:
//
//	carsim -print-topology
//	carsim -attack all -enforcement none,software,hpe
//	carsim -attack EVECU-1 -enforcement hpe -trace
//	carsim -fleet 100 -workers 8 -seed 42
//	carsim -fleet 1000 -reuse=false   # fresh-construction reference mode
//	carsim -campaign examples/campaigns/quickstart.campaign -fleet 100
//	carsim -campaign examples/campaigns/quickstart.campaign -list-scenarios
//	carsim -risk examples/threatmodels/connected-car.json
//	carsim -risk examples/threatmodels/connected-car.json -list-scenarios
//	carsim -campaign examples/campaigns/quickstart.campaign -fleet 50 -chaos "seed=7,panic=0.01,crash=0.002"
//	carsim -campaign examples/campaigns/quickstart.campaign -fleet 50 -verify-sample 0.05
//	carsim -campaign examples/campaigns/quickstart.campaign -fleet 100 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/hpe"
	"repro/internal/policy/ir"
	"repro/internal/report"
	"repro/internal/risk"
	"repro/internal/shard"
)

// errPartialSweep marks an unrecoverable sweep whose partial report was
// still flushed to stdout; main maps it to exit code 3, distinct from the
// generic failure exit 1, so callers can tell "failed with evidence" from
// "failed outright".
var errPartialSweep = errors.New("sweep unrecoverable, partial report flushed")

// supervision bundles the sweep supervisor's CLI-selectable knobs plus the
// policy backend the swept vehicles enforce with, and the sharding layout.
// chaosSpec keeps the raw -chaos string so subprocess shards can be handed
// the exact flag their parent parsed.
type supervision struct {
	plan      *chaos.Plan
	verify    float64
	backend   string
	chaosSpec string
	// shards partitions the fleet index space (<=1: unsharded); shardExec
	// runs each range as a carsim subprocess speaking the shard wire format.
	shards    int
	shardExec bool
	// shardWire selects the subprocess wire format: "binary" (the default
	// streaming frame protocol) or "json" (PR 9's buffered document, the
	// debugging fallback and differential-test oracle).
	shardWire string
	// shardParallelism bounds how many subprocess shards run concurrently
	// (1: sequential, PR 9's behaviour). The merge still consumes shards in
	// range order, so the report does not move.
	shardParallelism int
	// shardRange, when non-empty, puts this process in shard-child mode: run
	// only that "start:count" slice of the whole-fleet config and write the
	// wire report to stdout.
	shardRange string
}

func main() {
	topology := flag.Bool("print-topology", false, "print the Fig. 2 topology and exit")
	nodeArch := flag.String("print-node", "", "print the Fig. 3 internals of the named node and exit")
	hpeView := flag.Bool("print-hpe", false, "print the Fig. 4 policy-engine view of the EV-ECU and exit")
	attackSel := flag.String("attack", "", "threat id to replay, or \"all\"")
	enforcement := flag.String("enforcement", "none,hpe", "comma-separated regimes: none, software, hpe")
	trace := flag.Bool("trace", false, "print bus trace events during attacks")
	latency := flag.Bool("latency", false, "run the differing-criticality latency experiment (E1)")
	fleetSize := flag.Int("fleet", 0, "sweep N independent vehicle simulations and print the merged fleet report")
	workers := flag.Int("workers", 0, "bound the fleet worker pool (default GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "root seed for deterministic per-vehicle seed derivation")
	reuse := flag.Bool("reuse", true, "pool vehicles per worker (reset in place); false rebuilds every stack from scratch")
	noBatch := flag.Bool("no-batch", false, "run the cell-by-cell oracle executor instead of the batched default (prefix checkpointing + cross-vehicle memoisation); reports are byte-identical either way")
	detail := flag.Bool("detail", false, "with -campaign: append the verbose per-family detail block (stage counters included)")
	campaignFile := flag.String("campaign", "", "compile a campaign spec (text or JSON) and sweep it across the fleet")
	riskFile := flag.String("risk", "", "run a risk spec: synthesize a campaign from its threat model, sweep it, print the calibrated profile")
	listScenarios := flag.Bool("list-scenarios", false, "with -campaign or -risk: dump the generated scenario matrix without running it")
	chaosSpec := flag.String("chaos", "", "arm deterministic fault injection, e.g. \"seed=7,panic=0.01,corrupt=0.005,deadline=0.002,crash=0.001\" (\"off\" disables)")
	verifySample := flag.Float64("verify-sample", 0, "cross-check this fraction of batched cells against the cell-by-cell oracle inline (0 disables)")
	policyBackend := flag.String("policy-backend", "", "policy enforcement backend for swept vehicles: "+strings.Join(ir.Names(), ", ")+" (default table)")
	shards := flag.Int("shards", 0, "partition the fleet index space into N contiguous ranges run as independent engine runs; the merged report is byte-identical to the unsharded sweep")
	shardExec := flag.Bool("shard-exec", false, "with -shards: run each shard as a carsim subprocess (shard wire format over stdout) instead of in-process")
	shardWire := flag.String("shard-wire", "binary", "with -shard-exec: subprocess wire format, \"binary\" (streaming frame protocol) or \"json\" (buffered document; debugging fallback)")
	shardParallelism := flag.Int("shard-parallelism", 1, "with -shard-exec: run up to P subprocess shards concurrently; the merge stays in range order, so the report is byte-identical at any P")
	shardRange := flag.String("shard-range", "", "internal: run only this start:count slice of the fleet and emit the shard wire report on stdout (set by -shard-exec parents)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file when the run finishes")
	flag.Parse()

	plan, err := chaos.Parse(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carsim:", err)
		os.Exit(1)
	}
	if *verifySample < 0 || *verifySample > 1 {
		fmt.Fprintf(os.Stderr, "carsim: -verify-sample %v outside [0, 1]\n", *verifySample)
		os.Exit(1)
	}
	if _, err := ir.Lookup(*policyBackend); err != nil {
		fmt.Fprintln(os.Stderr, "carsim:", err)
		os.Exit(1)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "carsim: -shards %d is negative\n", *shards)
		os.Exit(1)
	}
	if *shardWire != "binary" && *shardWire != "json" {
		fmt.Fprintf(os.Stderr, "carsim: -shard-wire %q (want binary or json)\n", *shardWire)
		os.Exit(1)
	}
	if *shardParallelism < 1 {
		fmt.Fprintf(os.Stderr, "carsim: -shard-parallelism %d (want >= 1)\n", *shardParallelism)
		os.Exit(1)
	}
	sup := supervision{
		plan: plan, verify: *verifySample, backend: *policyBackend,
		chaosSpec: *chaosSpec, shards: *shards, shardExec: *shardExec,
		shardWire: *shardWire, shardParallelism: *shardParallelism,
		shardRange: *shardRange,
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carsim:", err)
		os.Exit(1)
	}
	// Profiles are flushed through a defer before the exit-code decision, so
	// a failing — or panicking — sweep can still be diagnosed from them.
	var flushErr error
	err = func() error {
		defer func() { flushErr = stopProfiles() }()
		return run(*topology, *nodeArch, *hpeView, *latency, *attackSel, *enforcement, *trace, *fleetSize, *workers, *seed, *reuse, *noBatch, *detail, *campaignFile, *riskFile, *listScenarios, sup)
	}()
	if err == nil {
		err = flushErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "carsim:", err)
		if errors.Is(err, errPartialSweep) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// startProfiles arms the requested pprof outputs and returns the flush
// function: CPU profiling stops and the heap profile is written (after a
// final GC, so the snapshot shows live retention rather than garbage) when
// the run ends, whether it succeeded or not. Both files are created up
// front so a bad path fails before the sweep runs, not after.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile, memFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, err
		}
		memFile = f
	}
	return func() error {
		var err error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			err = cpuFile.Close()
		}
		if memFile != nil {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(memFile); werr != nil && err == nil {
				err = werr
			}
			if cerr := memFile.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}, nil
}

func run(topology bool, nodeArch string, hpeView, latency bool, attackSel, enforcement string, trace bool, fleetSize, workers int, seed uint64, reuse, noBatch, detail bool, campaignFile, riskFile string, listScenarios bool, sup supervision) error {
	if topology {
		fmt.Print(report.Topology())
		return nil
	}
	if nodeArch != "" {
		fmt.Print(report.NodeArchitecture(nodeArch))
		return nil
	}
	if hpeView {
		return printHPEView()
	}
	if latency {
		return runLatency()
	}
	if sup.shardRange != "" {
		return runShardChild(campaignFile, riskFile, enforcement, fleetSize, workers, seed, reuse, noBatch, sup)
	}
	if campaignFile != "" {
		return runCampaign(campaignFile, listScenarios, fleetSize, workers, seed, reuse, noBatch, detail, sup)
	}
	if riskFile != "" {
		return runRisk(riskFile, listScenarios, fleetSize, workers, seed, reuse, noBatch, sup)
	}
	if listScenarios {
		return fmt.Errorf("-list-scenarios requires -campaign or -risk")
	}
	if fleetSize > 0 {
		return runFleet(fleetSize, workers, seed, enforcement, reuse, noBatch, sup)
	}
	if attackSel == "" {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -print-topology, -print-node, -print-hpe, -latency, -campaign, -risk, -fleet or -attack")
	}
	return runAttacks(attackSel, enforcement, trace, sup.backend)
}

// buildEngineConfig reconstructs the whole-fleet engine configuration of the
// current mode — campaign, risk, or the Table I fleet sweep — from the same
// flags the parent parsed, so a shard child partitions exactly the index
// space its parent did.
func buildEngineConfig(campaignFile, riskFile, enforcement string, fleetSize, workers int, seed uint64, reuse, noBatch bool, sup supervision) (engine.Config, error) {
	switch {
	case campaignFile != "":
		raw, err := os.ReadFile(campaignFile)
		if err != nil {
			return engine.Config{}, err
		}
		spec, err := campaign.Parse(string(raw))
		if err != nil {
			return engine.Config{}, err
		}
		plan, err := (campaign.Compiler{}).Compile(spec)
		if err != nil {
			return engine.Config{}, err
		}
		return campaign.EngineConfig(plan, campaignSweepConfig(fleetSize, workers, seed, reuse, noBatch, sup, nil))
	case riskFile != "":
		raw, err := os.ReadFile(riskFile)
		if err != nil {
			return engine.Config{}, err
		}
		spec, err := risk.ParseSpec(string(raw))
		if err != nil {
			return engine.Config{}, err
		}
		out, scfg, err := risk.SweepSetup(spec, riskRunConfig(fleetSize, workers, seed, reuse, noBatch, sup, nil))
		if err != nil {
			return engine.Config{}, err
		}
		return campaign.EngineConfig(out.Plan, scfg)
	default:
		regimes, err := parseRegimes(enforcement)
		if err != nil {
			return engine.Config{}, err
		}
		return engine.Config{
			Fleet:         fleetSize,
			Workers:       workers,
			RootSeed:      seed,
			Regimes:       regimes,
			FreshVehicles: !reuse,
			NoBatch:       noBatch,
			Chaos:         sup.plan,
			VerifySample:  sup.verify,
			PolicyBackend: sup.backend,
		}, nil
	}
}

// runShardChild is the hidden -shard-range mode a -shard-exec parent spawns:
// rebuild the whole-fleet configuration from the forwarded flags, run only
// the assigned index slice, and write the shard wire stream to stdout — on
// the binary wire, frame by frame as vehicles complete; on the JSON
// fallback, one buffered document. The child always exits 0 when the stream
// is written — an unrecoverable sweep travels in the trailer (or the
// document's Err field), exactly as engine.Run returns the partial report
// alongside its error.
func runShardChild(campaignFile, riskFile, enforcement string, fleetSize, workers int, seed uint64, reuse, noBatch bool, sup supervision) error {
	r, err := shard.ParseRange(sup.shardRange)
	if err != nil {
		return err
	}
	ecfg, err := buildEngineConfig(campaignFile, riskFile, enforcement, fleetSize, workers, seed, reuse, noBatch, sup)
	if err != nil {
		return err
	}
	if sup.shardWire == "json" {
		return shard.RunRange(ecfg, r).Encode(os.Stdout)
	}
	return shard.RunRangeWire(ecfg, r, os.Stdout)
}

// shardSpawn returns the subprocess spawn hook: re-invoke this binary with
// the run's own mode flags plus the child's -shard-range, and stream the
// wire format from its stdout. On the binary wire the child's pipe is
// decoded incrementally (the parent never buffers a shard's report set);
// the JSON fallback buffers the document as PR 9 did. Child stderr passes
// through for diagnostics.
func shardSpawn(campaignFile, riskFile, enforcement string, fleetSize, workers int, seed uint64, reuse, noBatch bool, sup supervision) shard.Spawn {
	return func(r shard.Range) (shard.Stream, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		args := []string{
			"-shard-range", r.String(),
			"-shard-wire", sup.shardWire,
			"-fleet", strconv.Itoa(fleetSize),
			"-workers", strconv.Itoa(workers),
			"-seed", strconv.FormatUint(seed, 10),
		}
		switch {
		case campaignFile != "":
			args = append(args, "-campaign", campaignFile)
		case riskFile != "":
			args = append(args, "-risk", riskFile)
		default:
			args = append(args, "-enforcement", enforcement)
		}
		if !reuse {
			args = append(args, "-reuse=false")
		}
		if noBatch {
			args = append(args, "-no-batch")
		}
		if sup.chaosSpec != "" {
			args = append(args, "-chaos", sup.chaosSpec)
		}
		if sup.verify > 0 {
			args = append(args, "-verify-sample", strconv.FormatFloat(sup.verify, 'g', -1, 64))
		}
		if sup.backend != "" {
			args = append(args, "-policy-backend", sup.backend)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if sup.shardWire == "json" {
			var out bytes.Buffer
			cmd.Stdout = &out
			if err := cmd.Run(); err != nil {
				return nil, fmt.Errorf("subprocess shard %s: %w", r, err)
			}
			w, err := shard.DecodeWireReport(&out)
			if err != nil {
				return nil, err
			}
			return w.Stream(), nil
		}
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("subprocess shard %s: %w", r, err)
		}
		return shard.NewWireStream(pipe, func() error {
			// Closing the read end first unblocks a child still writing
			// after a mid-stream decode error, so Wait cannot hang.
			pipe.Close()
			if err := cmd.Wait(); err != nil {
				return fmt.Errorf("subprocess shard %s: %w", r, err)
			}
			return nil
		}), nil
	}
}

// campaignSweepConfig assembles the campaign sweep configuration shared by
// the parent sweep and the shard child's config rebuild (spawn is nil in the
// child — its slice IS the work).
func campaignSweepConfig(fleetSize, workers int, seed uint64, reuse, noBatch bool, sup supervision, spawn shard.Spawn) campaign.SweepConfig {
	return campaign.SweepConfig{
		Fleet:            fleetSize,
		Workers:          workers,
		RootSeed:         seed,
		FreshVehicles:    !reuse,
		NoBatch:          noBatch,
		Chaos:            sup.plan,
		VerifySample:     sup.verify,
		PolicyBackend:    sup.backend,
		Shards:           sup.shards,
		SpawnShard:       spawn,
		ShardParallelism: sup.shardParallelism,
	}
}

// riskRunConfig is campaignSweepConfig's counterpart for the risk pipeline.
func riskRunConfig(fleetSize, workers int, seed uint64, reuse, noBatch bool, sup supervision, spawn shard.Spawn) risk.RunConfig {
	return risk.RunConfig{
		Fleet:            fleetSize,
		Workers:          workers,
		RootSeed:         seed,
		FreshVehicles:    !reuse,
		NoBatch:          noBatch,
		Chaos:            sup.plan,
		VerifySample:     sup.verify,
		PolicyBackend:    sup.backend,
		Shards:           sup.shards,
		SpawnShard:       spawn,
		ShardParallelism: sup.shardParallelism,
	}
}

// runCampaign compiles a campaign spec and either lists its generated
// scenario matrix or sweeps it across the fleet, printing the deterministic
// campaign view plus a separate wall-clock throughput line.
func runCampaign(path string, listOnly bool, fleetSize, workers int, seed uint64, reuse, noBatch, detail bool, sup supervision) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := campaign.Parse(string(raw))
	if err != nil {
		return err
	}
	plan, err := (campaign.Compiler{}).Compile(spec)
	if err != nil {
		return err
	}
	if listOnly {
		fmt.Print(plan.Matrix())
		return nil
	}
	if fleetSize <= 0 {
		fleetSize = 1
	}
	var spawn shard.Spawn
	if sup.shardExec {
		spawn = shardSpawn(path, "", "", fleetSize, workers, seed, reuse, noBatch, sup)
	}
	start := time.Now()
	rep, err := campaign.Sweep(plan, campaignSweepConfig(fleetSize, workers, seed, reuse, noBatch, sup, spawn))
	if err != nil {
		if rep == nil {
			return err
		}
		// Unrecoverable sweep: flush the partial view — its Health ledger is
		// the evidence an operator debugs from — then fail with exit code 3.
		fmt.Printf("mode=%s\n", execMode(noBatch))
		fmt.Print(report.CampaignView(rep))
		return fmt.Errorf("%w: %v", errPartialSweep, err)
	}
	elapsed := time.Since(start)
	fmt.Printf("mode=%s\n", execMode(noBatch))
	if detail {
		fmt.Print(report.CampaignDetailView(rep))
	} else {
		fmt.Print(report.CampaignView(rep))
	}
	pool := "pooled"
	if !reuse {
		pool = "fresh"
	}
	fmt.Printf("\nthroughput: %.0f vehicles/s, %.0f cells/s (%s vehicles, %v wall clock)\n",
		float64(fleetSize)/elapsed.Seconds(), float64(rep.Cells)/elapsed.Seconds(),
		pool, elapsed.Round(time.Millisecond))
	return nil
}

// execMode names the executor for the report header: "batched" is the
// default prefix-checkpointed path, "oracle" the -no-batch cell-by-cell
// reference. The marker sits in the deterministic body on purpose — the CI
// equivalence smoke strips it (with the throughput line) before diffing a
// batched run against an oracle run.
func execMode(noBatch bool) string {
	if noBatch {
		return "oracle"
	}
	return "batched"
}

// runRisk executes the risk pipeline: parse the spec, synthesize a campaign
// from its threat model, sweep it across the fleet, and print the
// calibrated rubric-vs-measured profile. The profile itself is
// deterministic; the wall-clock throughput line prints separately.
func runRisk(path string, listOnly bool, fleetSize, workers int, seed uint64, reuse, noBatch bool, sup supervision) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := risk.ParseSpec(string(raw))
	if err != nil {
		return err
	}
	if listOnly {
		out, err := risk.Compile(spec)
		if err != nil {
			return err
		}
		fmt.Print(out.Plan.Matrix())
		return nil
	}
	if fleetSize <= 0 {
		fleetSize = 1
	}
	var spawn shard.Spawn
	if sup.shardExec {
		spawn = shardSpawn("", path, "", fleetSize, workers, seed, reuse, noBatch, sup)
	}
	start := time.Now()
	out, err := risk.Run(spec, riskRunConfig(fleetSize, workers, seed, reuse, noBatch, sup, spawn))
	if err != nil {
		if out == nil || out.Report == nil {
			return err
		}
		// The profile was never calibrated (scoring from a partial sweep
		// would launder incomplete block rates into DREAD deltas); flush the
		// partial campaign evidence instead.
		fmt.Printf("mode=%s\n", execMode(noBatch))
		fmt.Print(report.CampaignView(out.Report))
		return fmt.Errorf("%w: %v", errPartialSweep, err)
	}
	elapsed := time.Since(start)
	fmt.Printf("mode=%s\n", execMode(noBatch))
	fmt.Print(report.RiskView(out.Profile))
	pool := "pooled"
	if !reuse {
		pool = "fresh"
	}
	fmt.Printf("\nthroughput: %.0f vehicles/s, %.0f cells/s (%s vehicles, %v wall clock)\n",
		float64(out.Report.Fleet)/elapsed.Seconds(), float64(out.Report.Cells)/elapsed.Seconds(),
		pool, elapsed.Round(time.Millisecond))
	return nil
}

// runFleet sweeps the Table I matrix across a simulated fleet and prints the
// merged report plus the wall-clock throughput. The report itself stays
// byte-stable for a given config; the timing line is printed separately.
func runFleet(fleetSize, workers int, seed uint64, enforcement string, reuse, noBatch bool, sup supervision) error {
	ecfg, err := buildEngineConfig("", "", enforcement, fleetSize, workers, seed, reuse, noBatch, sup)
	if err != nil {
		return err
	}
	start := time.Now()
	var fr *engine.FleetReport
	if sup.shards > 1 || sup.shardExec {
		var spawn shard.Spawn
		if sup.shardExec {
			spawn = shardSpawn("", "", enforcement, fleetSize, workers, seed, reuse, noBatch, sup)
		}
		fr, err = shard.Run(shard.Config{
			Engine: ecfg, Shards: sup.shards,
			Spawn: spawn, Parallelism: sup.shardParallelism,
		})
	} else {
		fr, err = engine.Run(ecfg)
	}
	if err != nil {
		if fr == nil {
			return err
		}
		fmt.Printf("mode=%s\n", execMode(noBatch))
		fmt.Print(fr)
		return fmt.Errorf("%w: %v", errPartialSweep, err)
	}
	elapsed := time.Since(start)
	fmt.Printf("mode=%s\n", execMode(noBatch))
	fmt.Print(fr)
	pool := "pooled"
	if !reuse {
		pool = "fresh"
	}
	fmt.Printf("throughput: %.0f vehicles/s (%s vehicles, %v wall clock)\n",
		float64(fleetSize)/elapsed.Seconds(), pool, elapsed.Round(time.Millisecond))
	return nil
}

// runLatency executes the E1 experiment matrix: {quiet, flood} x {none, hpe}.
func runLatency() error {
	h, err := attack.NewHarness()
	if err != nil {
		return err
	}
	fmt.Println("E1: per-class delivery latency under a high-priority flood (250 ms horizon)")
	cases := []struct {
		label string
		cfg   attack.LatencyConfig
	}{
		{"quiet bus, no enforcement", attack.LatencyConfig{Enforce: attack.EnforceNone}},
		{"flooded bus, no enforcement", attack.LatencyConfig{Enforce: attack.EnforceNone, Flood: true}},
		{"flooded bus, HPE deployed", attack.LatencyConfig{Enforce: attack.EnforceHPE, Flood: true}},
	}
	for _, cs := range cases {
		stats, err := h.MeasureLatency(cs.cfg)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", cs.label)
		for _, s := range stats {
			fmt.Println("  ", s)
		}
	}
	return nil
}

func printHPEView() error {
	h, err := attack.NewHarness()
	if err != nil {
		return err
	}
	c := car.MustNew(car.Config{})
	engines, err := hpe.Deploy(c.Bus(), h.Compiled, c, h.Cycles, car.AllNodes...)
	if err != nil {
		return err
	}
	fmt.Print(report.HPEView(engines[car.NodeEVECU], h.Compiled, car.ModeNormal))
	return nil
}

func parseRegimes(s string) ([]attack.Enforcement, error) {
	var out []attack.Enforcement
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "none":
			out = append(out, attack.EnforceNone)
		case "software":
			out = append(out, attack.EnforceSoftware)
		case "hpe":
			out = append(out, attack.EnforceHPE)
		case "":
		default:
			return nil, fmt.Errorf("unknown enforcement regime %q", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no enforcement regimes selected")
	}
	return out, nil
}

func runAttacks(sel, enforcement string, trace bool, backend string) error {
	regimes, err := parseRegimes(enforcement)
	if err != nil {
		return err
	}
	h, err := attack.NewHarnessBackend(backend)
	if err != nil {
		return err
	}
	var scenarios []attack.Scenario
	if sel == "all" {
		scenarios = attack.Scenarios()
	} else {
		sc, ok := attack.ScenarioFor(sel)
		if !ok {
			return fmt.Errorf("unknown threat id %q (try \"all\")", sel)
		}
		scenarios = []attack.Scenario{sc}
	}
	_ = trace // trace wiring below uses per-run cars; see verbose note.

	results, err := h.RunAll(scenarios, regimes...)
	if err != nil {
		return err
	}
	fmt.Printf("Attack matrix: %d scenario(s) x %d regime(s)\n\n", len(scenarios), len(regimes))
	fmt.Print(report.AttackResults(results))
	fmt.Println()
	for _, r := range results {
		fmt.Println(" ", r)
	}
	if trace {
		fmt.Println("\nBus trace of the first scenario under the last regime:")
		return traceOne(scenarios[0], regimes[len(regimes)-1], h)
	}
	return nil
}

// traceOne reruns a single scenario with a tracer attached, printing every
// bus event.
func traceOne(sc attack.Scenario, enf attack.Enforcement, h *attack.Harness) error {
	c := car.MustNew(car.Config{})
	c.Bus().SetTracer(func(e canbus.TraceEvent) { fmt.Println("   ", e) })
	if enf == attack.EnforceHPE {
		if _, err := h.DeployEngines(c.Bus(), c, car.AllNodes...); err != nil {
			return err
		}
	}
	if sc.Setup != nil {
		if err := sc.Setup(c); err != nil {
			return err
		}
		c.Scheduler().Run()
	}
	c.SetMode(sc.Mode)
	var attacker *canbus.Node
	switch sc.Placement {
	case attack.Inside:
		n, ok := c.Node(sc.Attacker)
		if !ok {
			return fmt.Errorf("unknown node %q", sc.Attacker)
		}
		n.Controller().CompromiseFilters()
		attacker = n
	case attack.Outside:
		n, err := c.Bus().Attach(sc.Attacker)
		if err != nil {
			return err
		}
		attacker = n
	}
	for _, inj := range sc.Injections {
		f, err := canbus.NewDataFrame(inj.ID, inj.Data)
		if err != nil {
			return err
		}
		n := inj.Repeat
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			_ = attacker.Send(f)
		}
	}
	c.Scheduler().Run()
	fmt.Printf("    outcome: succeeded=%v\n", sc.Succeeded(c.State()))
	return nil
}
