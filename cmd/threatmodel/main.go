// Command threatmodel runs the connected-car threat-modelling pipeline and
// prints the reproduced Table I, the derived per-threat restrictions and,
// optionally, the guideline document and the enforceable policy DSL.
//
// Usage:
//
//	threatmodel [-guidelines] [-policy] [-version N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/threatmodel"
)

func main() {
	guidelines := flag.Bool("guidelines", false, "also print the guideline-based security model (baseline)")
	policyOut := flag.Bool("policy", false, "also print the derived policy set in DSL form")
	profile := flag.Bool("profile", false, "also print the per-asset/per-entry-point risk profile")
	version := flag.Uint64("version", 1, "policy version stamp")
	flag.Parse()

	if err := run(*guidelines, *policyOut, *profile, *version); err != nil {
		fmt.Fprintln(os.Stderr, "threatmodel:", err)
		os.Exit(1)
	}
}

func run(guidelines, policyOut, profile bool, version uint64) error {
	model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", version)
	if err != nil {
		return err
	}
	fmt.Println("Threat modelling of the connected car application use case (Table I)")
	fmt.Println()
	fmt.Print(report.TableI(model.Analysis, car.TableRowOrder))
	fmt.Println()
	fmt.Printf("threats: %d   assets: %d   entry points: %d   modes: %v\n",
		len(model.Analysis.Threats), len(model.Analysis.UseCase.Assets),
		len(model.Analysis.UseCase.EntryPoints), model.Analysis.UseCase.Modes)

	fmt.Println("\nPer-threat enforcement points (policy column expansion):")
	for _, r := range model.Restrictions {
		fmt.Printf("  %-8s -> tighten %-2s at node %s\n", r.ThreatID, r.Action, r.Node)
	}

	if profile {
		fmt.Println("\nRisk profile:")
		fmt.Print(threatmodel.Profile(model.Analysis).String())
	}
	if guidelines {
		fmt.Println("\nGuideline-based security model (traditional approach):")
		for i, g := range model.Guidelines.Guidelines {
			fmt.Printf("  %2d. %s\n", i+1, g)
		}
	}
	if policyOut {
		fmt.Println("\nDerived policy set (DSL):")
		fmt.Print(model.Policies.String())
	}
	return nil
}
