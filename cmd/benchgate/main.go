// Command benchgate compares `go test -bench` output against a checked-in
// benchmark snapshot (BENCH_<n>.json) and fails when any benchmark regresses
// by more than the allowed factor in ns/op — or, when the input carries
// -benchmem columns and the snapshot records allocs_per_op, in allocs/op.
// It is the CI smoke gate for the fleet engine's throughput and the pooled
// substrate's allocation discipline: a gross slowdown (>2x by default) or an
// allocation explosion fails the build, while ordinary machine-to-machine
// noise passes (allocation counts are near-deterministic, so the allocs gate
// is effectively exact).
//
// Usage:
//
//	go test -run '^$' -bench 'FleetSweep|Fig2|CampaignSweep|RiskCalibrate' -benchmem -benchtime 20x . \
//	  | benchgate -snapshot BENCH_3.json
//
// The tool reads benchmark output on stdin. Sub-benchmark names are matched
// after stripping the trailing -<GOMAXPROCS> suffix; benchmarks missing from
// the snapshot are ignored, but at least one must match.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// snapshot mirrors the BENCH_<n>.json schema.
type snapshot struct {
	Comment    string                `json:"comment"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches e.g. "BenchmarkFleetSweep/fleet=1000-8  7  148317995 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocsField matches the -benchmem allocation column anywhere in the line.
var allocsField = regexp.MustCompile(`\s([0-9]+) allocs/op`)

func main() {
	snapPath := flag.String("snapshot", "BENCH_3.json", "benchmark snapshot to compare against")
	factor := flag.Float64("factor", 2.0, "fail when measured ns/op exceeds snapshot by this factor")
	allocFactor := flag.Float64("alloc-factor", 2.0, "fail when measured allocs/op exceeds snapshot by this factor (needs -benchmem input)")
	flag.Parse()

	raw, err := os.ReadFile(*snapPath)
	if err != nil {
		fatal("read snapshot: %v", err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		fatal("parse snapshot %s: %v", *snapPath, err)
	}

	matched, failed := 0, 0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		entry, ok := snap.Benchmarks[name]
		if !ok || entry.NsPerOp <= 0 {
			continue
		}
		measured, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		matched++
		ratio := measured / entry.NsPerOp
		verdict := "ok"
		if ratio > *factor {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("benchgate: %-40s %12.0f ns/op vs snapshot %12.0f (%.2fx) %s\n",
			name, measured, entry.NsPerOp, ratio, verdict)

		// Allocation gate: only when both sides carry the data. A pooled
		// substrate's allocs/op is nearly exact, so >allocFactor means a
		// hot path started allocating, not that the machine is slow.
		am := allocsField.FindStringSubmatch(line)
		if am == nil || entry.AllocsPerOp <= 0 {
			continue
		}
		allocs, err := strconv.ParseFloat(am[1], 64)
		if err != nil {
			continue
		}
		aratio := allocs / entry.AllocsPerOp
		verdict = "ok"
		if aratio > *allocFactor {
			verdict = "ALLOC REGRESSION"
			failed++
		}
		fmt.Printf("benchgate: %-40s %12.0f allocs/op vs snapshot %12.0f (%.2fx) %s\n",
			name, allocs, entry.AllocsPerOp, aratio, verdict)
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if matched == 0 {
		fatal("no benchmark in the input matched the snapshot %s", *snapPath)
	}
	if failed > 0 {
		fatal("%d benchmark gate(s) exceeded %.1fx (ns/op) / %.1fx (allocs/op) vs %s",
			failed, *factor, *allocFactor, *snapPath)
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.1fx ns/op and %.1fx allocs/op of %s\n",
		matched, *factor, *allocFactor, *snapPath)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
