// Command benchgate compares `go test -bench` output against a checked-in
// benchmark snapshot (BENCH_<n>.json) and fails when any benchmark regresses
// by more than the allowed factor in ns/op — or, when the input carries
// -benchmem columns and the snapshot records allocs_per_op, in allocs/op —
// or, when the snapshot records custom per-second metrics (vehicles/s,
// cells/s from b.ReportMetric), when a measured rate drops below snapshot /
// factor. Rates invert the gate because higher is better there; metrics
// whose unit is not per-second (scenarios/vehicle) are informational and
// never gated. It is the CI smoke gate for the fleet engine's throughput and
// the pooled substrate's allocation discipline: a gross slowdown (>2x by
// default), an allocation explosion or a collapsed sweep rate fails the
// build, while ordinary machine-to-machine noise passes (allocation counts
// are near-deterministic, so the allocs gate is effectively exact).
//
// Usage:
//
//	go test -run '^$' -bench 'FleetSweep|Fig2|CampaignSweep|RiskCalibrate' -benchmem -benchtime 20x . \
//	  | benchgate -snapshot BENCH_6.json
//
// The tool reads benchmark output on stdin. Sub-benchmark names are matched
// after stripping the trailing -<GOMAXPROCS> suffix; benchmarks missing from
// the snapshot are ignored, but at least one must match. After the verdicts
// it prints a benchstat-style delta summary (snapshot vs measured, signed
// percentages) so the CI log shows how far each hot path moved, not just
// whether it crossed the failure factor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// snapshot mirrors the BENCH_<n>.json schema.
type snapshot struct {
	Comment    string                `json:"comment"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric columns keyed by unit
	// (e.g. "vehicles/s", "cells/s"). Per-second units are rate-gated:
	// higher is better, so the gate fires when measured < snapshot/factor.
	Metrics map[string]float64 `json:"metrics"`
}

// benchLine matches e.g. "BenchmarkFleetSweep/fleet=1000-8  7  148317995 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocsField matches the -benchmem allocation column anywhere in the line.
var allocsField = regexp.MustCompile(`\s([0-9]+) allocs/op`)

// metricValue extracts the value of one custom b.ReportMetric column
// ("<value> <unit>") from a benchmark output line.
func metricValue(line, unit string) (float64, bool) {
	re := regexp.MustCompile(`\s([0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?) ` + regexp.QuoteMeta(unit) + `(?:\s|$)`)
	m := re.FindStringSubmatch(line)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// deltaRow is one matched benchmark's old-vs-new comparison for the summary
// table.
type deltaRow struct {
	name               string
	oldNs, newNs       float64
	oldAllocs, nAllocs float64 // -1 when either side lacks allocation data
}

// pct renders a benchstat-style signed percentage: negative is an
// improvement (less time / fewer allocations than the snapshot).
func pct(oldV, newV float64) string {
	if oldV <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

// printDeltaSummary renders the benchstat-style comparison table the CI log
// shows alongside the pass/fail verdicts: per benchmark, snapshot vs
// measured ns/op (and allocs/op when both sides carry it) with the signed
// percentage delta, so an improvement or a creeping sub-gate regression is
// visible without downloading artifacts and running benchstat by hand.
func printDeltaSummary(snapPath string, rows []deltaRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Printf("\nbenchgate: delta summary vs %s (negative = improvement)\n", snapPath)
	fmt.Printf("  %-44s %14s %14s %9s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, r := range rows {
		allocCols := fmt.Sprintf("%12s %12s %8s", "-", "-", "-")
		if r.oldAllocs >= 0 && r.nAllocs >= 0 {
			allocCols = fmt.Sprintf("%12.0f %12.0f %8s", r.oldAllocs, r.nAllocs, pct(r.oldAllocs, r.nAllocs))
		}
		fmt.Printf("  %-44s %14.0f %14.0f %9s %s\n", r.name, r.oldNs, r.newNs, pct(r.oldNs, r.newNs), allocCols)
	}
}

// printHealth is the containment-visibility side mode: it scans a carsim
// report (the CI smoke artifacts) for the sweep supervisor's health line and
// echoes the quarantine/retry/demotion counters with a benchgate prefix, so
// the CI log's smoke-diff section shows what the supervisor contained
// without anyone opening artifacts. Informational only — determinism is
// asserted by the diffs themselves, so this mode never fails the build.
func printHealth(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal("read report: %v", err)
	}
	found := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "health: ") {
			fmt.Printf("benchgate: containment (%s): %s\n", path, strings.TrimPrefix(line, "health: "))
			found = true
		}
	}
	if !found {
		fmt.Printf("benchgate: containment (%s): no health line (supervision not armed, nothing contained)\n", path)
	}
}

func main() {
	snapPath := flag.String("snapshot", "BENCH_6.json", "benchmark snapshot to compare against")
	factor := flag.Float64("factor", 2.0, "fail when measured ns/op exceeds snapshot by this factor")
	allocFactor := flag.Float64("alloc-factor", 2.0, "fail when measured allocs/op exceeds snapshot by this factor (needs -benchmem input)")
	healthFile := flag.String("print-health", "", "echo the supervisor health counters of a carsim report file and exit (no gating)")
	flag.Parse()

	if *healthFile != "" {
		printHealth(*healthFile)
		return
	}

	raw, err := os.ReadFile(*snapPath)
	if err != nil {
		fatal("read snapshot: %v", err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		fatal("parse snapshot %s: %v", *snapPath, err)
	}

	matched, failed := 0, 0
	var deltas []deltaRow
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		entry, ok := snap.Benchmarks[name]
		if !ok || entry.NsPerOp <= 0 {
			continue
		}
		measured, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		matched++
		ratio := measured / entry.NsPerOp
		verdict := "ok"
		if ratio > *factor {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("benchgate: %-40s %12.0f ns/op vs snapshot %12.0f (%.2fx) %s\n",
			name, measured, entry.NsPerOp, ratio, verdict)
		row := deltaRow{name: name, oldNs: entry.NsPerOp, newNs: measured, oldAllocs: -1, nAllocs: -1}

		// Allocation gate: only when both sides carry the data. A pooled
		// substrate's allocs/op is nearly exact, so >allocFactor means a
		// hot path started allocating, not that the machine is slow.
		am := allocsField.FindStringSubmatch(line)
		if am != nil && entry.AllocsPerOp > 0 {
			if allocs, err := strconv.ParseFloat(am[1], 64); err == nil {
				row.oldAllocs, row.nAllocs = entry.AllocsPerOp, allocs
				aratio := allocs / entry.AllocsPerOp
				verdict = "ok"
				if aratio > *allocFactor {
					verdict = "ALLOC REGRESSION"
					failed++
				}
				fmt.Printf("benchgate: %-40s %12.0f allocs/op vs snapshot %12.0f (%.2fx) %s\n",
					name, allocs, entry.AllocsPerOp, aratio, verdict)
			}
		}

		// Rate gate: custom per-second metrics (vehicles/s, cells/s) are
		// higher-is-better, so the gate inverts — fail when the measured rate
		// drops below snapshot/factor. Non-rate metrics (scenarios/vehicle)
		// are structural constants, printed for the log but never gated.
		units := make([]string, 0, len(entry.Metrics))
		for unit := range entry.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			snapV := entry.Metrics[unit]
			if snapV <= 0 {
				continue
			}
			measuredV, ok := metricValue(line, unit)
			if !ok {
				continue
			}
			rratio := measuredV / snapV
			if !strings.HasSuffix(unit, "/s") {
				fmt.Printf("benchgate: %-40s %12.0f %s vs snapshot %12.0f (%.2fx) info\n",
					name, measuredV, unit, snapV, rratio)
				continue
			}
			verdict = "ok"
			if measuredV < snapV / *factor {
				verdict = "RATE REGRESSION"
				failed++
			}
			fmt.Printf("benchgate: %-40s %12.0f %s vs snapshot %12.0f (%.2fx) %s\n",
				name, measuredV, unit, snapV, rratio, verdict)
		}
		deltas = append(deltas, row)
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if matched == 0 {
		fatal("no benchmark in the input matched the snapshot %s", *snapPath)
	}
	printDeltaSummary(*snapPath, deltas)
	if failed > 0 {
		fatal("%d benchmark gate(s) breached %.1fx (ns/op, rates) / %.1fx (allocs/op) vs %s",
			failed, *factor, *allocFactor, *snapPath)
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.1fx ns/op+rates and %.1fx allocs/op of %s\n",
		matched, *factor, *allocFactor, *snapPath)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
