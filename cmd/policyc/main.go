// Command policyc is the policy DSL compiler and signing tool: it parses
// and validates a policy document, optionally compiles it into the per-node
// approved reading/writing lists loaded by the hardware policy engine, and
// signs or verifies distributable bundles.
//
// Usage:
//
//	policyc -in policy.pol -check
//	policyc -in policy.pol -compile -subjects EV-ECU,Sensors -modes Normal,FailSafe
//	policyc -in policy.pol -compile -backend closure
//	policyc -in policy.pol -emit rego      # transpile to Rego text
//	policyc -in policy.pol -emit cel       # transpile to a CEL expression
//	policyc -in policy.pol -emit jumptable # dump the closure backend's tables
//	policyc -in policy.pol -sign -seed-file oem.seed -out bundle.json
//	policyc -verify bundle.json -seed-file oem.seed
//	policyc -table-i            # emit the connected-car policy derived from Table I
package main

import (
	"crypto/ed25519"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/policy/ir"
)

// usageError marks operator mistakes (unknown backend or emit format) that
// exit 2 — distinguishing bad invocations from bad inputs, which exit 1.
type usageError struct{ error }

func main() {
	in := flag.String("in", "", "input policy DSL file (default stdin)")
	check := flag.Bool("check", false, "parse and validate only")
	compile := flag.Bool("compile", false, "compile and print per-node approved lists")
	subjects := flag.String("subjects", "", "comma-separated subjects for -compile/-emit")
	modes := flag.String("modes", "", "comma-separated modes for -compile/-emit")
	backend := flag.String("backend", "", "enforcement backend for -compile: "+strings.Join(ir.Names(), ", ")+" (default table)")
	emit := flag.String("emit", "", "export the compiled policy: rego, cel, or jumptable")
	sign := flag.Bool("sign", false, "sign the policy into a bundle")
	verify := flag.String("verify", "", "bundle file to verify")
	seedFile := flag.String("seed-file", "", "32-byte ed25519 seed file for -sign/-verify")
	out := flag.String("out", "", "output file for -sign (default stdout)")
	tableI := flag.Bool("table-i", false, "emit the derived connected-car policy DSL and exit")
	diffOld := flag.String("diff", "", "old policy file: print the semantic diff from it to -in and exit")
	flag.Parse()

	if err := run(*in, *check, *compile, *subjects, *modes, *backend, *emit, *sign, *verify, *seedFile, *out, *tableI, *diffOld); err != nil {
		fmt.Fprintln(os.Stderr, "policyc:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(in string, check, compile bool, subjects, modes, backend, emit string, sign bool, verify, seedFile, out string, tableI bool, diffOld string) error {
	if _, err := ir.Lookup(backend); err != nil {
		return usageError{fmt.Errorf("%w\nusage: -backend takes one of: %s", err, strings.Join(ir.Names(), ", "))}
	}
	switch emit {
	case "", "rego", "cel", "jumptable":
	default:
		return usageError{fmt.Errorf("unknown -emit format %q\nusage: -emit takes one of: rego, cel, jumptable", emit)}
	}
	if tableI {
		model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 1)
		if err != nil {
			return err
		}
		fmt.Print(model.Policies.String())
		return nil
	}
	if verify != "" {
		return verifyBundle(verify, seedFile)
	}
	src, err := readInput(in)
	if err != nil {
		return err
	}
	set, err := policy.Parse(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parsed policy %q version %d: %d rules, %d subjects, %d modes\n",
		set.Name, set.Version, len(set.Rules), len(set.Subjects()), len(set.Modes()))
	if diffOld != "" {
		oldSrc, err := os.ReadFile(diffOld)
		if err != nil {
			return err
		}
		oldSet, err := policy.Parse(string(oldSrc))
		if err != nil {
			return fmt.Errorf("parsing %s: %w", diffOld, err)
		}
		d, err := policy.DiffSets(oldSet, set, policy.DiffOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("semantic diff %s (v%d) -> -in (v%d):\n%s",
			diffOld, oldSet.Version, set.Version, d.String())
		return nil
	}
	if emit != "" {
		return emitPolicy(os.Stdout, set, subjects, modes, emit)
	}
	if check && !compile && !sign {
		return nil
	}
	if compile {
		if err := compileAndPrint(set, subjects, modes, backend); err != nil {
			return err
		}
	}
	if sign {
		return signBundle(src, seedFile, out)
	}
	return nil
}

func readInput(in string) (string, error) {
	if in == "" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// deviceModel resolves the -subjects/-modes flags to compile options,
// defaulting to the subjects and modes the policy itself mentions.
func deviceModel(set *policy.Set, subjects, modes string) policy.CompileOptions {
	subjList := splitList(subjects)
	if len(subjList) == 0 {
		subjList = set.Subjects()
	}
	var pModes []policy.Mode
	for _, m := range splitList(modes) {
		pModes = append(pModes, policy.Mode(m))
	}
	if len(pModes) == 0 {
		pModes = set.Modes()
		if len(pModes) == 0 {
			pModes = []policy.Mode{"default"}
		}
	}
	return policy.CompileOptions{Subjects: subjList, Modes: pModes}
}

// emitPolicy exports the lowered policy in the named textual form: the expr
// backend's transpiled source (rego or cel) or the closure backend's
// jump-table dump.
func emitPolicy(w io.Writer, set *policy.Set, subjects, modes, format string) error {
	opts := deviceModel(set, subjects, modes)
	switch format {
	case "rego", "cel":
		p, err := ir.Lower(set, opts)
		if err != nil {
			return err
		}
		if format == "rego" {
			_, err = io.WriteString(w, ir.TranspileRego(p))
		} else {
			_, err = io.WriteString(w, ir.TranspileCEL(p))
		}
		return err
	default: // jumptable
		opts.Backend = "closure"
		enf, err := ir.Build(set, opts)
		if err != nil {
			return err
		}
		d, ok := enf.(interface{ Dump() string })
		if !ok {
			return fmt.Errorf("closure backend does not expose a jump-table dump")
		}
		_, err = io.WriteString(w, d.Dump())
		return err
	}
}

func compileAndPrint(set *policy.Set, subjects, modes, backend string) error {
	opts := deviceModel(set, subjects, modes)
	if backend != "" && backend != ir.DefaultBackend {
		// Compile under the named backend so its errors surface here, then
		// print the canonical per-node lists — backends are
		// decision-equivalent, so the lists are backend-invariant.
		opts.Backend = backend
		enf, err := ir.Build(set, opts)
		if err != nil {
			return err
		}
		name, version := enf.Policy()
		fmt.Printf("backend %s: policy %q version %d\n", enf.Backend(), name, version)
		opts.Backend = ""
	}
	compiled, err := policy.Compile(set, opts)
	if err != nil {
		return err
	}
	for _, subj := range compiled.Subjects() {
		nt := compiled.Node(subj)
		fmt.Printf("node %s\n", subj)
		for _, mode := range compiled.Modes {
			mt := nt.Table(mode)
			fmt.Printf("  mode %-12s reads: %s\n", mode, fmtIDs(mt.Reads))
			fmt.Printf("  %-17s writes: %s\n", "", fmtIDs(mt.Writes))
		}
	}
	return nil
}

func fmtIDs(l policy.IDLookup) string {
	if l == nil || l.Len() == 0 {
		return "(none)"
	}
	ids := l.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("0x%03X", id)
	}
	return strings.Join(parts, " ")
}

func loadKey(seedFile string) (ed25519.PrivateKey, error) {
	if seedFile == "" {
		return nil, fmt.Errorf("-seed-file is required")
	}
	seed, err := os.ReadFile(seedFile)
	if err != nil {
		return nil, err
	}
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("seed file must hold exactly %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	return ed25519.NewKeyFromSeed(seed), nil
}

func signBundle(src, seedFile, out string) error {
	key, err := loadKey(seedFile)
	if err != nil {
		return err
	}
	b, err := policy.Sign(src, key)
	if err != nil {
		return err
	}
	data, err := b.Encode()
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func verifyBundle(path, seedFile string) error {
	key, err := loadKey(seedFile)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	b, err := policy.DecodeBundle(data)
	if err != nil {
		return err
	}
	set, err := b.Verify(key.Public().(ed25519.PublicKey))
	if err != nil {
		return err
	}
	fmt.Printf("bundle OK: policy %q version %d, %d rules\n", set.Name, set.Version, len(set.Rules))
	return nil
}
