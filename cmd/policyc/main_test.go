package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
	"repro/internal/policy/ir"
)

// update regenerates the golden files: go test ./cmd/policyc -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

func samplePolicy(t *testing.T) *policy.Set {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "sample.pol"))
	if err != nil {
		t.Fatal(err)
	}
	set, err := policy.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// sampleModel pins the device model so the goldens do not depend on the
// flag-defaulting logic inferring subjects/modes from the policy text.
const (
	sampleSubjects = "EV-ECU,Diagnostics,Infotainment"
	sampleModes    = "Normal,RemoteDiag,FailSafe"
)

// TestEmitGolden locks the three -emit exports against checked-in goldens.
// The transpilers promise deterministic output (interned order only), so a
// golden diff means the textual contract changed, not map-order noise.
func TestEmitGolden(t *testing.T) {
	set := samplePolicy(t)
	for _, format := range []string{"rego", "cel", "jumptable"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := emitPolicy(&buf, set, sampleSubjects, sampleModes, format); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "sample."+format+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("-emit %s drifted from %s (run with -update if intended):\n--- golden\n%s--- got\n%s",
					format, golden, want, buf.Bytes())
			}
		})
	}
}

// TestEmitDeterministic re-emits each format and requires byte-identical
// output, so a map-iteration dependency cannot hide behind a fresh -update.
func TestEmitDeterministic(t *testing.T) {
	set := samplePolicy(t)
	for _, format := range []string{"rego", "cel", "jumptable"} {
		var a, b bytes.Buffer
		if err := emitPolicy(&a, set, sampleSubjects, sampleModes, format); err != nil {
			t.Fatal(err)
		}
		if err := emitPolicy(&b, set, sampleSubjects, sampleModes, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("-emit %s is not deterministic", format)
		}
	}
}

// TestUnknownBackendIsUsageError pins the exit-2 contract: an unknown
// -backend name must surface as a usageError whose message names every
// registered backend.
func TestUnknownBackendIsUsageError(t *testing.T) {
	err := run("", false, false, "", "", "jit", "", false, "", "", "", false, "")
	var ue usageError
	if !asUsage(err, &ue) {
		t.Fatalf("unknown backend error = %T %v, want usageError", err, err)
	}
	for _, name := range ir.Names() {
		if !bytes.Contains([]byte(err.Error()), []byte(name)) {
			t.Errorf("usage error does not name backend %q: %v", name, err)
		}
	}
}

// TestUnknownEmitIsUsageError does the same for -emit.
func TestUnknownEmitIsUsageError(t *testing.T) {
	err := run("", false, false, "", "", "", "yaml", false, "", "", "", false, "")
	var ue usageError
	if !asUsage(err, &ue) {
		t.Fatalf("unknown emit error = %T %v, want usageError", err, err)
	}
}

func asUsage(err error, target *usageError) bool {
	ue, ok := err.(usageError)
	if ok {
		*target = ue
	}
	return ok
}
