// Command rollout drives a staged OTA policy update against a simulated
// vehicle fleet: it derives (or loads) a candidate policy set, diffs it
// against the fleet's current set, advances it through canary cohorts with
// fleet.Rollout, gates every stage on measured campaign evidence — a
// sharded sweep of a cohort-sized fleet whose calibrated residual risk must
// not regress versus the current policy — and automatically rolls the fleet
// back to the prior set when a gate vetoes or a stage crosses the abort
// threshold.
//
// Exit codes: 0 the candidate reached the whole fleet, 2 the driver rolled
// back (the transcript carries the evidence), 1 the driver itself failed.
//
// Usage:
//
//	rollout -vehicles 40                  # clean advance drill (exit 0)
//	rollout -vehicles 40 -drill rollback  # flawed candidate, gate veto (exit 2)
//	rollout -vehicles 40 -apply-fail 0.5  # seeded canary apply failures (exit 2)
//	rollout -candidate next.policy -shards 4
//
// The deterministic transcript (diff, stages, residual evidence, verdict)
// prints on stdout; continuous wall-clock telemetry (vehicles/s,
// decisions/s per gate sweep) prints on stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/car"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/policy/ir"
	"repro/internal/risk"
	"repro/internal/rollout"
	"repro/internal/threatmodel"
)

// saltApplyFail decorrelates seeded apply-failure rolls from every other
// consumer of the shared deterministic generator.
const saltApplyFail uint64 = 0xAF

func main() {
	vehicles := flag.Int("vehicles", 40, "simulated fleet size (provisioned policy stores)")
	candidateFile := flag.String("candidate", "", "candidate policy set (DSL file); default: generated per -drill")
	drill := flag.String("drill", "advance", "generated-candidate drill: advance (benign re-issue) or rollback (semantic hole the gate must catch)")
	applyFail := flag.Float64("apply-fail", 0, "seeded fraction of vehicles that reject the candidate bundle (deterministic per vehicle; drills the abort threshold)")
	seed := flag.Uint64("seed", 1, "root seed for gate sweeps and seeded apply failures")
	workers := flag.Int("workers", 0, "gate sweep worker pool (default GOMAXPROCS)")
	shards := flag.Int("shards", 0, "shard the gate sweeps' fleet index space (evidence is byte-identical across shard counts)")
	tolerance := flag.Float64("tolerance", 0, "relative residual-risk regression tolerated before a gate vetoes (0: any regression)")
	noGate := flag.Bool("no-gate", false, "disable evidence gating (stages advance on the abort threshold alone)")
	backend := flag.String("policy-backend", "", "policy backend for gate sweeps (default table)")
	flag.Parse()

	code, err := run(*vehicles, *candidateFile, *drill, *applyFail, *seed, *workers, *shards, *tolerance, *noGate, *backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rollout:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(vehicleCount int, candidateFile, drill string, applyFail float64, seed uint64, workers, shards int, tolerance float64, noGate bool, backend string) (int, error) {
	if vehicleCount <= 0 {
		return 1, fmt.Errorf("-vehicles %d is not a fleet", vehicleCount)
	}
	if applyFail < 0 || applyFail > 1 {
		return 1, fmt.Errorf("-apply-fail %v outside [0, 1]", applyFail)
	}
	if _, err := ir.Lookup(backend); err != nil {
		return 1, err
	}

	// The fleet's current set is the analysis-derived Table I policy — the
	// same set every simulated vehicle enforces by default.
	analysis, err := car.Analyze()
	if err != nil {
		return 1, err
	}
	current, err := threatmodel.DerivePolicies(analysis, "table-i", 1)
	if err != nil {
		return 1, err
	}
	candidate, err := loadCandidate(current, candidateFile, drill)
	if err != nil {
		return 1, err
	}

	// A deterministic OEM identity: the drill must replay bit-for-bit, so
	// the signing key derives from a fixed seed (ed25519 signatures are
	// deterministic given key and message).
	oem, err := core.NewOEM(bytes.NewReader(bytes.Repeat([]byte{0x42}, 64)))
	if err != nil {
		return 1, err
	}

	fleetVehicles, err := buildFleet(oem, current, vehicleCount, candidate.Version, applyFail, seed)
	if err != nil {
		return 1, err
	}

	cfg := rollout.Config{
		OEM:       oem,
		Current:   current,
		Candidate: candidate,
		Vehicles:  fleetVehicles,
		Backend:   backend,
		Workers:   workers,
		Shards:    shards,
		RootSeed:  seed,
		Tolerance: tolerance,
		Telemetry: os.Stderr,
	}
	if !noGate {
		cfg.GateSpec = &risk.Spec{Model: "connected-car", Seed: seed}
	}
	outcome, err := rollout.Run(cfg)
	if err != nil {
		return 1, err
	}
	fmt.Print(outcome)
	if outcome.RolledBack {
		return 2, nil
	}
	return 0, nil
}

// loadCandidate reads the candidate set from a DSL file, or generates the
// requested drill candidate from the current set.
func loadCandidate(current *policy.Set, path, drill string) (*policy.Set, error) {
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		set, err := policy.Parse(string(raw))
		if err != nil {
			return nil, err
		}
		return set, nil
	}
	cand := *current
	cand.Rules = append([]policy.Rule(nil), current.Rules...)
	cand.Version = current.Version + 1
	switch drill {
	case "advance":
		// A benign re-issue: same semantics, next version. The gate measures
		// identical residuals and the candidate advances cleanly.
	case "rollback":
		// A candidate with a semantic hole: a blanket allow across the whole
		// identifier space drops every defended block, so the gate sweep's
		// residual risk regresses and the driver must retreat.
		cand.Rules = append(cand.Rules, policy.Rule{
			Name:    "overbroad-diagnostic-access",
			Subject: policy.SubjectAll,
			Effect:  policy.Allow,
			Action:  policy.ActReadWrite,
			IDs:     policy.IDSet{{Lo: 0, Hi: 0x7FF}},
		})
	default:
		return nil, fmt.Errorf("unknown -drill %q (want advance or rollback)", drill)
	}
	if err := cand.Validate(); err != nil {
		return nil, err
	}
	return &cand, nil
}

// buildFleet provisions vehicleCount policy-store endpoints, all running the
// current set. Each vehicle verifies bundles against the OEM key and keeps
// the store's version monotonicity; a bundle the vehicle already runs counts
// as success (idempotent re-runs). applyFail > 0 makes a deterministic
// per-vehicle fraction reject the CANDIDATE version specifically — seeded
// canary failures for the abort-threshold drill; the rollback bundle (a
// different version) is never sabotaged.
func buildFleet(oem *core.OEM, current *policy.Set, vehicleCount int, candidateVersion uint64, applyFail float64, seed uint64) ([]fleet.Vehicle, error) {
	baseBundle, err := oem.Issue(current)
	if err != nil {
		return nil, err
	}
	opts := policy.CompileOptions{Subjects: car.AllNodes, Modes: car.AllModes}
	out := make([]fleet.Vehicle, vehicleCount)
	for i := 0; i < vehicleCount; i++ {
		store := policy.NewStore(oem.PublicKey(), opts)
		if _, err := store.Apply(baseBundle); err != nil {
			return nil, fmt.Errorf("provisioning vehicle %d: %w", i, err)
		}
		idx := i
		out[i] = fleet.VehicleFunc{
			VID: fmt.Sprintf("VIN-%06d", i),
			Fn: func(b *policy.Bundle) error {
				if s := store.CurrentSet(); s != nil && s.Version >= b.Version {
					return nil // already current (idempotent re-run)
				}
				if applyFail > 0 && b.Version == candidateVersion &&
					chaos.Roll(seed, saltApplyFail, idx) < applyFail {
					return fmt.Errorf("simulated update failure (vehicle %d)", idx)
				}
				_, err := store.Apply(b)
				return err
			},
		}
	}
	return out, nil
}
