// Package repro reproduces "Policy-Based Security Modelling and Enforcement
// Approach for Emerging Embedded Architectures" (Hagan, Siddiqui & Sezer,
// IEEE SOCC 2018, DOI 10.1109/SOCC.2018.8618544) as a Go library.
//
// The paper derives enforceable security policies directly from application
// threat modelling (STRIDE classification, DREAD risk scoring) and enforces
// them with a hardware policy engine between a CAN controller and its
// transceiver, complemented by an SELinux-style software MAC. This module
// implements the approach end to end on a simulated substrate:
//
//   - internal/sim       — discrete-event simulation kernel (resettable,
//     allocation-free steady state)
//   - internal/canbus    — bit-accurate CAN 2.0 bus (ISO 11898) simulation,
//     restorable in place to a pristine topology snapshot
//   - internal/stride    — STRIDE categorisation
//   - internal/dread     — DREAD scoring with a qualitative rubric
//   - internal/policy    — policy model, DSL, compiler, signed bundles
//   - internal/policy/ir — typed policy IR and the pluggable enforcement
//     backend registry: policies lower once (interned subjects/modes,
//     dropped unreachable rules, closed-world decision contract) and
//     compile through a named backend — "table" (the HPE-table
//     interpreter, unchanged), "expr" (rego/CEL-style rule-AST walker,
//     also the transpile source for policyc -emit rego|cel), "closure"
//     (pre-compiled per-vehicle-model jump tables) — all allocation-free
//     on the per-frame Decide path
//   - internal/policy/difftest — differential-equivalence harness holding
//     every backend to the IR's decision contract over exhaustive probe
//     matrices (Table I included) and fuzzed policy sets
//     (FuzzBackendEquivalence)
//   - internal/hpe       — the Fig. 4 hardware policy engine
//   - internal/mac       — SELinux-style type-enforcement MAC
//   - internal/threatmodel — the Fig. 1 modelling pipeline
//   - internal/car       — the connected-car case study (Figs. 2-3, Table I)
//   - internal/attack    — attack injection and measurement harness
//   - internal/lifecycle — Fig. 1 life-cycle and response-cycle economics
//   - internal/report    — table and figure renderers
//   - internal/core      — the paper's contribution glued end to end
//   - internal/fleet     — §V-A.2 staged policy rollout (canary, abort)
//   - internal/engine    — fleet-scale simulation engine: N independent
//     vehicles (scheduler + bus + car + HPE/MAC each) on a bounded worker
//     pool with deterministic per-vehicle seeds, merged reports, and
//     per-worker vehicle arenas that reset one stack in place per vehicle
//     instead of rebuilding it; multi-group runs sweep a whole campaign's
//     scenario groups per vehicle visit (vehicle-major, no per-family
//     barrier)
//   - internal/campaign  — procedural adversary-campaign generator: a
//     declarative text/JSON spec (campaign.Parse) expands into families of
//     generated scenarios — Table I mutations, coordinated multi-attacker
//     floods, predicate-gated multi-stage kill chains — compiled onto
//     attack.Scenario cells and swept on the fleet engine in one
//     vehicle-major pass with SplitMix64 sub-seeds (CampaignReport
//     byte-identical across worker counts and pooled/fresh runs); shipped
//     specs live under examples/campaigns
//   - internal/risk      — empirically-grounded risk scoring: the threat
//     model compiles into campaign families (risk.Synthesize: tampering →
//     payload mutations, DoS → floods, elevation → staged kill chains) and
//     the swept report reconciles each threat's rubric DREAD score with
//     measured evidence (risk.Calibrate: block rates → exploitability and
//     affected-users, goal hits → damage), yielding a deterministic
//     rubric-vs-measured profile with a ranked residual-risk table; run
//     specs live under examples/threatmodels (carsim -risk)
//   - internal/shard     — fleet partition-and-merge layer: contiguous
//     index ranges run as independent engine passes (global-index seeding
//     keeps every vehicle trajectory pinned to its shard-independent
//     coordinates) and merge in range order through engine.MergeFold,
//     byte-identical to the unsharded run; spawn hooks run ranges out of
//     process (carsim -shard-exec), sequentially or concurrently under a
//     bounded in-order merge window (-shard-parallelism)
//   - internal/shard/wire — the binary shard transport: a versioned,
//     CRC32-framed varint stream carrying one vehicle report per frame,
//     written as vehicles complete and decoded incrementally (neither side
//     buffers a shard's report set; ~12x smaller than the JSON document
//     fallback); any corrupted byte surfaces as a typed checksum error the
//     shard driver records like a failed shard
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
